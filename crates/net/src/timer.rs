//! A lazy hashed timer wheel for idle-connection sweeping.
//!
//! Each live connection keeps exactly one entry in its shard's wheel.
//! Activity does **not** move the entry (that would cost a removal per
//! read); instead the entry fires at the connection's *original* deadline
//! and the shard re-checks the real `last_activity` then — still fresh
//! means reinsert at the true deadline, stale means reap.  Entries are
//! `(slot, generation)` pairs, so an entry left behind by a closed
//! connection is recognised and discarded when it fires.

use std::time::{Duration, Instant};

/// Number of wheel slots.  Any deadline further out than the wheel spans
/// is clamped to the far edge; lazy re-checking makes that early firing
/// harmless (the entry is just reinserted).
const WHEEL_SLOTS: usize = 64;

pub(crate) struct TimerWheel {
    slots: Vec<Vec<(usize, u64)>>,
    tick: Duration,
    cursor: usize,
    /// The wall-clock time slot `cursor` represents.
    cursor_time: Instant,
}

impl TimerWheel {
    pub(crate) fn new(tick: Duration, now: Instant) -> Self {
        Self {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            tick: tick.max(Duration::from_millis(1)),
            cursor: 0,
            cursor_time: now,
        }
    }

    /// Schedules `(slot, gen)` to fire at or shortly after `deadline`.
    pub(crate) fn insert(&mut self, deadline: Instant, conn_slot: usize, gen: u64) {
        let delay = deadline.saturating_duration_since(self.cursor_time);
        // Ceiling division: an entry must never fire before its deadline
        // out of mere rounding (early firing is only for clamped far-out
        // deadlines, where the caller reinserts).
        let ticks =
            delay.as_nanos().div_ceil(self.tick.as_nanos()).clamp(1, (WHEEL_SLOTS - 1) as u128)
                as usize;
        let idx = (self.cursor + ticks) % WHEEL_SLOTS;
        self.slots[idx].push((conn_slot, gen));
    }

    /// Advances the wheel to `now`, collecting every entry whose slot has
    /// come due into `expired` (cleared first).
    pub(crate) fn advance(&mut self, now: Instant, expired: &mut Vec<(usize, u64)>) {
        expired.clear();
        let mut steps = 0usize;
        while now.saturating_duration_since(self.cursor_time) >= self.tick {
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            self.cursor_time += self.tick;
            expired.append(&mut self.slots[self.cursor]);
            steps += 1;
            // After a full revolution every slot has been drained; fast-
            // forward the cursor time instead of spinning (e.g. after the
            // process was suspended for much longer than the wheel spans).
            if steps == WHEEL_SLOTS {
                self.cursor_time = now;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), t0);
        wheel.insert(t0 + Duration::from_millis(35), 3, 7);
        let mut expired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(20), &mut expired);
        assert!(expired.is_empty());
        wheel.advance(t0 + Duration::from_millis(60), &mut expired);
        assert_eq!(expired, vec![(3, 7)]);
        // One-shot: it does not fire again.
        wheel.advance(t0 + Duration::from_millis(800), &mut expired);
        assert!(expired.is_empty());
    }

    #[test]
    fn far_deadline_clamps_to_wheel_edge_and_refires_on_reinsert() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), t0);
        // 10 s is far beyond the 640 ms the wheel spans: clamped to the
        // far edge, fires early, and the caller reinserts.
        wheel.insert(t0 + Duration::from_secs(10), 1, 1);
        let mut expired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(700), &mut expired);
        assert_eq!(expired, vec![(1, 1)]);
        wheel.insert(t0 + Duration::from_secs(10), 1, 1);
        wheel.advance(t0 + Duration::from_millis(1400), &mut expired);
        assert_eq!(expired, vec![(1, 1)]);
    }

    #[test]
    fn long_suspension_drains_everything_without_spinning() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), t0);
        for conn in 0..5 {
            wheel.insert(t0 + Duration::from_millis(10 * (conn as u64 + 1)), conn, 0);
        }
        let mut expired = Vec::new();
        // Hours later: one advance call drains all slots.
        wheel.advance(t0 + Duration::from_secs(3600), &mut expired);
        let mut conns: Vec<usize> = expired.iter().map(|&(c, _)| c).collect();
        conns.sort_unstable();
        assert_eq!(conns, vec![0, 1, 2, 3, 4]);
    }
}
