//! Reactor telemetry: lock-free counters shared by the acceptor, every
//! loop shard, and whoever serves a stats endpoint.

use std::sync::atomic::{AtomicU64, Ordering};

/// Why a shard closed a connection (drives the counter taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseReason {
    /// The peer finished cleanly (EOF) or the service asked to close after
    /// responding (e.g. a `shutdown` acknowledgement) — not a drop.
    Clean,
    /// The server gave up on the connection: socket error, failed write,
    /// or force-close at the end of a shutdown drain.
    Abnormal,
    /// The idle timer wheel reaped the connection.
    IdleTimeout,
}

/// Connection-lifecycle counters for one reactor.
///
/// `accepted` counts sockets handed to a loop shard over the reactor's
/// lifetime; `open` is the current population (the acceptor increments it
/// at handoff, the owning shard decrements it at close, so it also gates
/// the overload cap); `dropped` counts server-initiated closes that were
/// not clean client EOFs, of which `idle_timeouts` is the idle-reap
/// subset.  `overload_refusals` counts sockets refused at accept time —
/// those never reach `accepted`.  `shard_open` is the per-shard share of
/// `open` (it can transiently lag `open` while a socket is in flight from
/// the acceptor to its shard).
#[derive(Debug)]
pub struct ReactorMetrics {
    accepted: AtomicU64,
    open: AtomicU64,
    dropped: AtomicU64,
    idle_timeouts: AtomicU64,
    overload_refusals: AtomicU64,
    shard_open: Box<[AtomicU64]>,
}

impl ReactorMetrics {
    /// Counters for a reactor with `loop_shards` shards, all zero.
    pub fn new(loop_shards: usize) -> Self {
        Self {
            accepted: AtomicU64::new(0),
            open: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            idle_timeouts: AtomicU64::new(0),
            overload_refusals: AtomicU64::new(0),
            shard_open: (0..loop_shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of loop shards these counters were sized for.
    pub fn shard_count(&self) -> usize {
        self.shard_open.len()
    }

    /// Connections handed to a loop shard over the reactor's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections currently open (or in flight to their shard).
    pub fn open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Server-initiated closes that were not clean client EOFs.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Connections reaped by the idle timer wheel (subset of `dropped`).
    pub fn idle_timeouts(&self) -> u64 {
        self.idle_timeouts.load(Ordering::Relaxed)
    }

    /// Sockets refused at accept time because `max_connections` was hit.
    pub fn overload_refusals(&self) -> u64 {
        self.overload_refusals.load(Ordering::Relaxed)
    }

    /// Current open-connection count per loop shard.
    pub fn shard_open(&self) -> Vec<u64> {
        self.shard_open.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    pub(crate) fn on_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_refused(&self) {
        self.overload_refusals.fetch_add(1, Ordering::Relaxed);
    }

    /// The socket was accepted but never reached a shard slot (handoff or
    /// registration failed, or the shard was already draining).
    pub(crate) fn on_handoff_failed(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn on_adopt(&self, shard: usize) {
        self.shard_open[shard].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_close(&self, shard: usize, reason: CloseReason) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        self.shard_open[shard].fetch_sub(1, Ordering::Relaxed);
        match reason {
            CloseReason::Clean => {}
            CloseReason::Abnormal => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            CloseReason::IdleTimeout => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.idle_timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
