//! Per-connection state machine: buffered line framing in, buffered
//! nonblocking writes out.

use polling::Interest;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// What one attempt to extract the next request line produced.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum LineStep {
    /// A complete line occupies `read_buf[start..end]` (terminator and a
    /// trailing `\r` excluded).  The range stays valid until the next
    /// `next_line`/`compact` call.
    Line { start: usize, end: usize },
    /// A line exceeded the cap; its bytes have been discarded.  The
    /// service's overlong response is owed at this position of the
    /// pipeline.
    Overlong,
    /// No complete line buffered: need more bytes, or the peer is done.
    Pending,
}

/// One connection owned by a loop shard.
pub(crate) struct Connection {
    pub(crate) stream: TcpStream,
    /// Bytes read but not yet framed; `cursor` marks the consumed prefix.
    read_buf: Vec<u8>,
    cursor: usize,
    /// Queued response bytes; `write_pos` marks the flushed prefix.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// The interest currently registered with the poll (`None` = not
    /// registered), so reconciliation only issues epoll_ctl on change.
    pub(crate) interest: Option<Interest>,
    /// Mid-discard of an overlong line: swallow bytes until a newline.
    overlong_drain: bool,
    /// An engine-bound request is in flight; reads stay paused until its
    /// completion lands (preserves pipelined response order).
    pub(crate) await_engine: bool,
    /// The peer sent EOF; finish the buffered tail, flush, close.
    pub(crate) peer_eof: bool,
    /// Close as soon as the write buffer flushes.
    pub(crate) closing: bool,
    /// Last read/write/engine-reply progress, for the idle sweep.
    pub(crate) last_activity: Instant,
}

impl Connection {
    pub(crate) fn new(stream: TcpStream, now: Instant) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            cursor: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            interest: None,
            overlong_drain: false,
            await_engine: false,
            peer_eof: false,
            closing: false,
            last_activity: now,
        }
    }

    /// Appends freshly-read bytes to the framing buffer.
    pub(crate) fn push_bytes(&mut self, bytes: &[u8]) {
        self.read_buf.extend_from_slice(bytes);
    }

    /// The framed slice for a [`LineStep::Line`] result.
    pub(crate) fn line(&self, start: usize, end: usize) -> &[u8] {
        &self.read_buf[start..end]
    }

    /// Extracts the next request line from the framing buffer.
    ///
    /// Framing contract (mirrors the blocking reader it replaces): a line
    /// is terminated by `\n` with an optional preceding `\r`; an empty
    /// line is a (malformed) request, not a keep-alive; a line longer than
    /// `max` bytes (CR included, LF excluded) is discarded up to its
    /// newline and reported as [`LineStep::Overlong`] exactly once; after
    /// EOF a non-empty unterminated tail is processed as a final line.
    pub(crate) fn next_line(&mut self, max: usize) -> LineStep {
        if self.overlong_drain {
            match find_newline(&self.read_buf[self.cursor..]) {
                Some(i) => {
                    self.cursor += i + 1;
                    self.overlong_drain = false;
                    return LineStep::Overlong;
                }
                None => {
                    // Keep nothing of a line already known overlong.
                    self.read_buf.clear();
                    self.cursor = 0;
                    if self.peer_eof {
                        self.overlong_drain = false;
                        return LineStep::Overlong;
                    }
                    return LineStep::Pending;
                }
            }
        }
        match find_newline(&self.read_buf[self.cursor..]) {
            Some(i) => {
                let start = self.cursor;
                let mut end = self.cursor + i;
                self.cursor = end + 1;
                if end - start > max {
                    return LineStep::Overlong;
                }
                if end > start && self.read_buf[end - 1] == b'\r' {
                    end -= 1;
                }
                LineStep::Line { start, end }
            }
            None => {
                let pending = self.read_buf.len() - self.cursor;
                if pending > max {
                    self.read_buf.clear();
                    self.cursor = 0;
                    if self.peer_eof {
                        return LineStep::Overlong;
                    }
                    self.overlong_drain = true;
                    return LineStep::Pending;
                }
                if self.peer_eof && pending > 0 {
                    // EOF flushes the unterminated tail as a final request
                    // (no terminator, so no `\r` stripping either — the
                    // `\r` was part of what the peer actually sent).
                    let start = self.cursor;
                    let end = self.read_buf.len();
                    self.cursor = end;
                    return LineStep::Line { start, end };
                }
                LineStep::Pending
            }
        }
    }

    /// Drops the consumed prefix of the framing buffer.
    pub(crate) fn compact(&mut self) {
        if self.cursor > 0 {
            self.read_buf.drain(..self.cursor);
            self.cursor = 0;
        }
    }

    /// Queues one response line (newline appended here).
    pub(crate) fn queue_response(&mut self, line: &str) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
    }

    /// Unflushed response bytes currently queued.
    pub(crate) fn write_backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Writes as much queued output as the socket accepts right now.
    /// Returns the bytes written; `WouldBlock` is progress-zero, not an
    /// error.  A slow or dead peer therefore never blocks the loop.
    pub(crate) fn try_flush(&mut self) -> std::io::Result<usize> {
        let mut written = 0;
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.write_pos += n;
                    written += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos >= 64 << 10 {
            // Keep a long-draining buffer from holding its flushed prefix.
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        Ok(written)
    }

    /// Reads once from the socket into the framing buffer via `scratch`.
    /// Returns `Ok(true)` if the connection made progress (bytes or EOF),
    /// `Ok(false)` on `WouldBlock`.  One bounded read per readiness event
    /// keeps shard time fair across connections; level-triggered polling
    /// re-reports whatever remains.
    pub(crate) fn read_once(&mut self, scratch: &mut [u8]) -> std::io::Result<bool> {
        match self.stream.read(scratch) {
            Ok(0) => {
                self.peer_eof = true;
                Ok(true)
            }
            Ok(n) => {
                self.push_bytes(&scratch[..n]);
                Ok(true)
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted => {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }
}

fn find_newline(buf: &[u8]) -> Option<usize> {
    buf.iter().position(|&b| b == b'\n')
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn conn() -> Connection {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        Connection::new(stream, Instant::now())
    }

    fn expect_line(c: &mut Connection, max: usize) -> Vec<u8> {
        match c.next_line(max) {
            LineStep::Line { start, end } => c.line(start, end).to_vec(),
            other => panic!("expected a line, got {other:?}"),
        }
    }

    #[test]
    fn frames_pipelined_lines_and_strips_crlf() {
        let mut c = conn();
        c.push_bytes(b"alpha\r\nbeta\n\ngamma");
        assert_eq!(expect_line(&mut c, 1024), b"alpha");
        assert_eq!(expect_line(&mut c, 1024), b"beta");
        assert_eq!(expect_line(&mut c, 1024), b"");
        assert_eq!(c.next_line(1024), LineStep::Pending);
        c.compact();
        c.peer_eof = true;
        assert_eq!(expect_line(&mut c, 1024), b"gamma");
        assert_eq!(c.next_line(1024), LineStep::Pending);
    }

    #[test]
    fn overlong_line_reported_once_and_connection_reusable() {
        let mut c = conn();
        let long = vec![b'x'; 100];
        c.push_bytes(&long);
        // Cap is 64: the partial 100-byte line is already known overlong,
        // but the report waits for its newline (response order).
        assert_eq!(c.next_line(64), LineStep::Pending);
        c.push_bytes(&long);
        assert_eq!(c.next_line(64), LineStep::Pending);
        c.push_bytes(b"tail\nok\n");
        assert_eq!(c.next_line(64), LineStep::Overlong);
        assert_eq!(expect_line(&mut c, 64), b"ok");
    }

    #[test]
    fn overlong_line_with_newline_in_same_chunk() {
        let mut c = conn();
        let mut chunk = vec![b'y'; 80];
        chunk.push(b'\n');
        chunk.extend_from_slice(b"next\n");
        c.push_bytes(&chunk);
        assert_eq!(c.next_line(64), LineStep::Overlong);
        assert_eq!(expect_line(&mut c, 64), b"next");
    }

    #[test]
    fn overlong_then_eof_still_reports() {
        let mut c = conn();
        c.push_bytes(&[b'z'; 80]);
        assert_eq!(c.next_line(64), LineStep::Pending);
        c.peer_eof = true;
        assert_eq!(c.next_line(64), LineStep::Overlong);
        assert_eq!(c.next_line(64), LineStep::Pending);
    }

    #[test]
    fn line_exactly_at_cap_passes() {
        let mut c = conn();
        let mut chunk = vec![b'a'; 64];
        chunk.push(b'\n');
        c.push_bytes(&chunk);
        assert_eq!(expect_line(&mut c, 64), vec![b'a'; 64].as_slice());
    }
}
