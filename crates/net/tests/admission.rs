//! Admission-control surface of `pka-net`: token-bucket properties and
//! the middleware chain running against a live reactor.

use pka_net::{
    Action, Completion, ConnId, Gate, LineMiddleware, LineService, MiddlewareStack, NetConfig,
    Reactor, ReactorMetrics, TokenBucket,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

proptest! {
    /// Tokens are never negative, never exceed burst, and every refusal
    /// carries a finite wait hint.
    #[test]
    fn bucket_tokens_stay_within_bounds(
        rate_milli in 1u64..10_000_000,
        burst in 1u64..10_000,
        steps in proptest::collection::vec((0u64..5_000_000, 0u8..4), 0..64),
    ) {
        let mut bucket = TokenBucket::new(rate_milli as f64 / 1000.0, burst as f64);
        for (advance_us, takes) in steps {
            bucket.advance(Duration::from_micros(advance_us));
            prop_assert!(bucket.tokens() <= bucket.burst() + 1e-9);
            for _ in 0..takes {
                if let Err(wait) = bucket.try_take() {
                    prop_assert!(wait > Duration::ZERO);
                    prop_assert!(wait <= Duration::from_secs(3600));
                }
                prop_assert!(bucket.tokens() >= 0.0);
            }
        }
    }

    /// Refill saturates at burst: no amount of idle time banks more than
    /// `burst` admissions.
    #[test]
    fn bucket_refill_saturates_at_burst(
        rate in 1u64..100_000,
        burst in 1u64..256,
        idle_s in 1u64..100_000,
    ) {
        let mut bucket = TokenBucket::new(rate as f64, burst as f64);
        bucket.advance(Duration::from_secs(idle_s));
        let mut admitted = 0u64;
        while bucket.try_take().is_ok() {
            admitted += 1;
            prop_assert!(admitted <= burst, "admitted past burst");
        }
        prop_assert_eq!(admitted, burst);
    }

    /// Admission is monotone in elapsed time: if a bucket admits after
    /// waiting `d`, it also admits after waiting any `d' >= d` from the
    /// same state.
    #[test]
    fn bucket_admission_monotone_in_elapsed_time(
        rate_milli in 1u64..1_000_000,
        burst in 1u64..64,
        drain in 0u64..64,
        wait_us in 0u64..10_000_000,
        extra_us in 0u64..10_000_000,
    ) {
        let mut base = TokenBucket::new(rate_milli as f64 / 1000.0, burst as f64);
        for _ in 0..drain {
            let _ = base.try_take();
        }
        let mut shorter = base.clone();
        let mut longer = base;
        shorter.advance(Duration::from_micros(wait_us));
        longer.advance(Duration::from_micros(wait_us + extra_us));
        if shorter.try_take().is_ok() {
            prop_assert!(longer.try_take().is_ok(), "longer wait must not lose admission");
        }
    }
}

/// Inner service: plain echo.
struct Echo;

impl LineService for Echo {
    fn on_line(&self, line: &[u8], _completion: Completion) -> Action {
        Action::Respond(format!("echo:{}", String::from_utf8_lossy(line)))
    }

    fn overlong_response(&self) -> String {
        "error:overlong".to_string()
    }

    fn overloaded_response(&self) -> String {
        "error:overloaded".to_string()
    }
}

/// Middleware admitting `quota` lines per connection, then refusing.
struct Quota {
    quota: u64,
    used: Mutex<HashMap<ConnId, u64>>,
}

impl LineMiddleware for Quota {
    fn gate(&self, conn: ConnId, _line: &[u8]) -> Gate {
        let mut used = self.used.lock().unwrap();
        let n = used.entry(conn).or_insert(0);
        *n += 1;
        if *n > self.quota {
            Gate::Refuse("refused:quota".to_string())
        } else {
            Gate::Pass
        }
    }

    fn on_close(&self, conn: ConnId) {
        self.used.lock().unwrap().remove(&conn);
    }
}

/// Middleware refusing any line containing "blocked" (chain ordering:
/// runs after the quota layer).
struct BlockWord;

impl LineMiddleware for BlockWord {
    fn gate(&self, _conn: ConnId, line: &[u8]) -> Gate {
        if line.windows(7).any(|w| w == b"blocked") {
            Gate::Refuse("refused:word".to_string())
        } else {
            Gate::Pass
        }
    }
}

#[test]
fn middleware_chain_gates_lines_and_releases_state_on_close() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let quota = Arc::new(Quota { quota: 3, used: Mutex::new(HashMap::new()) });
    let service = Arc::new(MiddlewareStack::new(
        Echo,
        vec![Arc::clone(&quota) as Arc<dyn LineMiddleware>, Arc::new(BlockWord)],
    ));
    let config = NetConfig::default().normalized();
    let metrics = Arc::new(ReactorMetrics::new(config.loop_shards));
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = Reactor::start(listener, service, config, shutdown, metrics).unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let call = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str| {
        writeln!(writer, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };

    // First layer refusal wins even when the second would refuse too.
    assert_eq!(call(&mut writer, &mut reader, "a"), "echo:a");
    assert_eq!(call(&mut writer, &mut reader, "blocked"), "refused:word");
    assert_eq!(call(&mut writer, &mut reader, "b"), "echo:b");
    // Quota counts gated lines too (3 admitted by quota so far is wrong:
    // quota counts every line, so the 4th is refused by the quota layer
    // before the word layer sees it).
    assert_eq!(call(&mut writer, &mut reader, "blocked"), "refused:quota");
    assert_eq!(call(&mut writer, &mut reader, "c"), "refused:quota");
    // A fresh connection has a fresh quota.
    let stream2 = TcpStream::connect(addr).unwrap();
    stream2.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader2 = BufReader::new(stream2.try_clone().unwrap());
    let mut writer2 = stream2;
    assert_eq!(call(&mut writer2, &mut reader2, "fresh"), "echo:fresh");

    // Closing connections releases their per-connection state.
    drop(writer);
    drop(reader);
    drop(writer2);
    drop(reader2);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !quota.used.lock().unwrap().is_empty() {
        assert!(Instant::now() < deadline, "per-connection state never released");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
}
