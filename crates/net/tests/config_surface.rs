//! Serde/proptest surface of the reactor config: any `NetConfig`
//! round-trips through the wire format, and normalization is idempotent.

use pka_net::NetConfig;
use proptest::prelude::*;

proptest! {
    #[test]
    fn roundtrips_through_json_and_normalizes_servable(
        loop_shards in 0usize..64,
        max_connections in 0usize..100_000,
        idle_timeout_ms in 0u64..600_000,
        max_line_bytes in 0usize..(8 << 20),
        write_high_water in 0usize..(4 << 20),
    ) {
        let config = NetConfig {
            loop_shards,
            max_connections,
            idle_timeout_ms,
            max_line_bytes,
            write_high_water,
        };
        let encoded = serde_json::to_string(&config).unwrap();
        let decoded: NetConfig = serde_json::from_str(&encoded).unwrap();
        prop_assert_eq!(&decoded, &config);

        let normalized = config.normalized();
        prop_assert!(normalized.loop_shards >= 1);
        prop_assert!(normalized.max_connections >= 1);
        prop_assert!(normalized.max_line_bytes >= 64);
        prop_assert!(normalized.write_high_water >= 4096);
        prop_assert_eq!(normalized.idle_timeout_ms, config.idle_timeout_ms);
        prop_assert_eq!(normalized.normalized(), normalized.clone());
    }
}
