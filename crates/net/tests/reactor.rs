//! Reactor behaviour tests over a toy echo service: framing, pipelining
//! with deferred replies, backpressure isolation, idle reaping, overload
//! refusal, and drain-clean shutdown.

use pka_net::{Action, Completion, LineService, NetConfig, Reactor, ReactorHandle, ReactorMetrics};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Echoes `echo <x>` lines synchronously; `defer <x>` lines are answered
/// from a background worker thread (exercising the completion path);
/// `bulk <n>` responds with an `n`-byte payload (exercising write
/// backpressure); `bye` responds then closes.
struct EchoService {
    defer_tx: Mutex<mpsc::Sender<(String, Completion)>>,
}

impl LineService for EchoService {
    fn on_line(&self, line: &[u8], completion: Completion) -> Action {
        let text = String::from_utf8_lossy(line).into_owned();
        if let Some(payload) = text.strip_prefix("defer ") {
            let tx = self.defer_tx.lock().unwrap();
            tx.send((payload.to_string(), completion)).unwrap();
            return Action::Deferred;
        }
        if let Some(size) = text.strip_prefix("bulk ") {
            let n: usize = size.trim().parse().unwrap_or(0);
            return Action::Respond("b".repeat(n));
        }
        if text == "bye" {
            return Action::RespondClose("goodbye".to_string());
        }
        Action::Respond(format!("echo:{text}"))
    }

    fn overlong_response(&self) -> String {
        "error:overlong".to_string()
    }

    fn overloaded_response(&self) -> String {
        "error:overloaded".to_string()
    }
}

struct Rig {
    handle: ReactorHandle,
    addr: std::net::SocketAddr,
    metrics: Arc<ReactorMetrics>,
    _worker: std::thread::JoinHandle<()>,
}

/// Boots a reactor with the echo service and one worker thread answering
/// deferred lines (after an optional delay, to widen race windows).
fn boot(config: NetConfig, defer_delay: Duration) -> Rig {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (defer_tx, defer_rx) = mpsc::channel::<(String, Completion)>();
    let worker = std::thread::spawn(move || {
        while let Ok((payload, completion)) = defer_rx.recv() {
            if !defer_delay.is_zero() {
                std::thread::sleep(defer_delay);
            }
            completion.respond(format!("deferred:{payload}"));
        }
    });
    let service = Arc::new(EchoService { defer_tx: Mutex::new(defer_tx) });
    let config = config.normalized();
    let metrics = Arc::new(ReactorMetrics::new(config.loop_shards));
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = Reactor::start(listener, service, config, shutdown, Arc::clone(&metrics)).unwrap();
    Rig { handle, addr, metrics, _worker: worker }
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

fn call(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    writeln!(writer, "{line}").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

#[test]
fn echo_roundtrip_across_connections() {
    let rig = boot(NetConfig::default(), Duration::ZERO);
    for i in 0..4 {
        let (mut reader, mut writer) = connect(rig.addr);
        assert_eq!(
            call(&mut reader, &mut writer, &format!("hello {i}")),
            format!("echo:hello {i}")
        );
        assert_eq!(call(&mut reader, &mut writer, ""), "echo:");
    }
    assert_eq!(rig.metrics.accepted(), 4);
    rig.handle.shutdown();
}

#[test]
fn pipelined_batch_preserves_order_through_deferred_replies() {
    // Deferred replies take 20 ms each; sync lines pipelined behind them
    // must still be answered in request order.
    let rig = boot(NetConfig::default(), Duration::from_millis(20));
    let (mut reader, mut writer) = connect(rig.addr);
    writer.write_all(b"echo a\ndefer b\necho c\ndefer d\necho e\n").unwrap();
    let expect = ["echo:echo a", "deferred:b", "echo:echo c", "deferred:d", "echo:echo e"];
    for want in expect {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), want);
    }
    rig.handle.shutdown();
}

#[test]
fn byte_at_a_time_writes_frame_correctly() {
    let rig = boot(NetConfig::default(), Duration::ZERO);
    let (mut reader, mut writer) = connect(rig.addr);
    for &b in b"slow\n" {
        writer.write_all(&[b]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "echo:slow");
    rig.handle.shutdown();
}

#[test]
fn overlong_line_answered_once_and_connection_survives() {
    let config = NetConfig { max_line_bytes: 128, ..NetConfig::default() };
    let rig = boot(config, Duration::ZERO);
    let (mut reader, mut writer) = connect(rig.addr);
    let huge = vec![b'x'; 1024];
    writer.write_all(&huge).unwrap();
    writer.write_all(b"\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "error:overlong");
    assert_eq!(call(&mut reader, &mut writer, "still here"), "echo:still here");
    rig.handle.shutdown();
}

#[test]
fn eof_flushes_final_unterminated_line() {
    let rig = boot(NetConfig::default(), Duration::ZERO);
    let (mut reader, mut writer) = connect(rig.addr);
    writer.write_all(b"echo tail").unwrap();
    writer.shutdown(std::net::Shutdown::Write).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "echo:echo tail");
    // Server closes after answering the tail.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    rig.handle.shutdown();
}

#[test]
fn respond_close_flushes_then_closes() {
    let rig = boot(NetConfig::default(), Duration::ZERO);
    let (mut reader, mut writer) = connect(rig.addr);
    assert_eq!(call(&mut reader, &mut writer, "bye"), "goodbye");
    let mut line = String::new();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    rig.handle.shutdown();
}

#[test]
fn never_reading_client_does_not_stall_shard_mates() {
    // One loop shard, small write high-water: the hog requests bulk
    // payloads and never reads them, saturating its write buffer; a well-
    // behaved client on the same (only) shard must keep getting answers.
    let config = NetConfig {
        loop_shards: 1,
        write_high_water: 4096,
        idle_timeout_ms: 0,
        ..NetConfig::default()
    };
    let rig = boot(config, Duration::ZERO);
    let (_hog_reader, mut hog_writer) = connect(rig.addr);
    for _ in 0..64 {
        writeln!(hog_writer, "bulk 4096").unwrap();
    }
    std::thread::sleep(Duration::from_millis(100));
    let (mut reader, mut writer) = connect(rig.addr);
    let start = Instant::now();
    for i in 0..50 {
        assert_eq!(call(&mut reader, &mut writer, &format!("live {i}")), format!("echo:live {i}"));
    }
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "shard stalled behind a never-reading peer: {:?}",
        start.elapsed()
    );
    // Close the hog before shutting down so the drain need not wait out
    // its grace period for the undeliverable backlog.
    drop(hog_writer);
    drop(_hog_reader);
    std::thread::sleep(Duration::from_millis(50));
    rig.handle.shutdown();
}

#[test]
fn half_open_connection_reaped_by_idle_timeout() {
    let config = NetConfig { idle_timeout_ms: 150, ..NetConfig::default() };
    let rig = boot(config, Duration::ZERO);
    let (mut idle_reader, _idle_writer) = connect(rig.addr);
    // An active connection with regular traffic must survive the sweep.
    let (mut live_reader, mut live_writer) = connect(rig.addr);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut reaped = false;
    while Instant::now() < deadline {
        assert_eq!(call(&mut live_reader, &mut live_writer, "tick"), "echo:tick");
        let mut probe = [0u8; 1];
        idle_reader.get_mut().set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        match idle_reader.get_mut().read(&mut probe) {
            Ok(0) => {
                reaped = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    assert!(reaped, "idle connection was never reaped");
    assert_eq!(call(&mut live_reader, &mut live_writer, "after"), "echo:after");
    assert!(rig.metrics.idle_timeouts() >= 1);
    rig.handle.shutdown();
}

#[test]
fn connection_cap_refused_with_structured_line() {
    let config = NetConfig { max_connections: 2, ..NetConfig::default() };
    let rig = boot(config, Duration::ZERO);
    let keep: Vec<_> = (0..2).map(|_| connect(rig.addr)).collect();
    // Make sure both are adopted before probing the cap.
    std::thread::sleep(Duration::from_millis(50));
    let (mut reader, _writer) = connect(rig.addr);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "error:overloaded");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "refused socket must be closed");
    assert!(rig.metrics.overload_refusals() >= 1);
    drop(keep);
    // Capacity frees once the held connections close.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (mut reader, mut writer) = connect(rig.addr);
        writeln!(writer, "retry").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim_end() == "echo:retry" {
            break;
        }
        assert!(Instant::now() < deadline, "cap never released");
        std::thread::sleep(Duration::from_millis(25));
    }
    rig.handle.shutdown();
}

#[test]
fn shutdown_drains_open_connections_and_joins() {
    let rig = boot(NetConfig::default(), Duration::from_millis(30));
    let (mut reader, mut writer) = connect(rig.addr);
    // An engine-bound request in flight at shutdown still gets answered.
    writeln!(writer, "defer last").unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let handle = rig.handle;
    let start = Instant::now();
    handle.shutdown();
    assert!(start.elapsed() < Duration::from_secs(6), "drain did not terminate");
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "deferred:last");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
}

#[test]
fn open_counts_track_shard_population() {
    let config = NetConfig { loop_shards: 2, ..NetConfig::default() };
    let rig = boot(config, Duration::ZERO);
    let conns: Vec<_> = (0..6).map(|_| connect(rig.addr)).collect();
    // Round-robin handoff: wait until all six are adopted.
    let deadline = Instant::now() + Duration::from_secs(5);
    while rig.metrics.shard_open().iter().sum::<u64>() < 6 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(rig.metrics.open(), 6);
    assert_eq!(rig.metrics.shard_open(), vec![3, 3]);
    drop(conns);
    let deadline = Instant::now() + Duration::from_secs(5);
    while rig.metrics.open() > 0 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(rig.metrics.dropped(), 0);
    rig.handle.shutdown();
}
