//! A blocking line-protocol client: the helper the integration tests, the
//! throughput bench and the `pka-serve probe` subcommand all drive the
//! server with.

use crate::error::ServeError;
use crate::protocol::{self, object};
use crate::server::{EngineStats, IngestSummary, RefitSummary, ServerStats};
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One name-based batch query: `(target pairs, evidence pairs)`.
pub type NamedQuery<'a> = (&'a [(&'a str, &'a str)], &'a [(&'a str, &'a str)]);

/// The typed answer to a `query` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// `P(target | evidence)`.
    pub probability: f64,
    /// `P(target, evidence)`.
    pub joint_probability: f64,
    /// `P(evidence)`.
    pub evidence_probability: f64,
    /// The unconditional `P(target)`.
    pub prior_probability: f64,
    /// `probability / prior_probability`, or `None` when the prior is zero
    /// (the server sends `null`; infinity has no JSON representation).
    pub lift: Option<f64>,
    /// Human-readable rendering of the question and answer.
    pub description: String,
    /// Version of the snapshot that answered.
    pub snapshot_version: u64,
    /// Tuples that snapshot was fitted on.
    pub observations: u64,
}

/// A blocking client over one TCP connection.
///
/// Requests are answered in order, so [`LineClient::pipeline`] may send a
/// whole batch before reading any response.
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl LineClient {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        // A generous timeout so a wedged server fails tests instead of
        // hanging them.
        writer.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer, next_id: 1 })
    }

    /// Sends one request and returns its `result` (or the server's
    /// structured error as [`ServeError::Remote`]).
    pub fn call(&mut self, method: &str, params: Value) -> Result<Value, ServeError> {
        self.call_ref(method, &params)
    }

    /// [`LineClient::call`] by reference — lets a client re-send a large
    /// params tree (e.g. a standing `query-batch`) without moving or
    /// cloning it.
    pub fn call_ref(&mut self, method: &str, params: &Value) -> Result<Value, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = protocol::request_line(id, method, params);
        self.send_line(&line)?;
        let response = self.read_response()?;
        Self::unwrap_response(response, Some(id))
    }

    /// Sends a raw line verbatim (malformed-input testing) and returns the
    /// parsed response envelope.
    pub fn call_raw(&mut self, line: &str) -> Result<Value, ServeError> {
        self.send_line(line)?;
        self.read_response()
    }

    /// Sends raw bytes plus a newline (e.g. invalid UTF-8) and returns the
    /// parsed response envelope.
    pub fn call_bytes(&mut self, bytes: &[u8]) -> Result<Value, ServeError> {
        let mut framed = Vec::with_capacity(bytes.len() + 1);
        framed.extend_from_slice(bytes);
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.read_response()
    }

    /// Pipelines a batch of `(method, params)` requests: all writes first,
    /// then all reads, in order.
    pub fn pipeline(
        &mut self,
        requests: &[(&str, Value)],
    ) -> Result<Vec<Result<Value, ServeError>>, ServeError> {
        let first_id = self.next_id;
        let mut lines = String::new();
        for (offset, (method, params)) in requests.iter().enumerate() {
            lines.push_str(&protocol::request_line(first_id + offset as u64, method, params));
            lines.push('\n');
        }
        self.next_id += requests.len() as u64;
        self.writer.write_all(lines.as_bytes())?;
        (0..requests.len())
            .map(|offset| {
                let response = self.read_response()?;
                Ok(Self::unwrap_response(response, Some(first_id + offset as u64)))
            })
            .collect()
    }

    /// `ping` → true on pong.
    pub fn ping(&mut self) -> Result<bool, ServeError> {
        let result = self.call("ping", object([]))?;
        Ok(result.get("pong") == Some(&Value::Bool(true)))
    }

    /// The server's schema as `(attribute, values)` name lists.
    pub fn schema(&mut self) -> Result<Vec<(String, Vec<String>)>, ServeError> {
        let result = self.call("schema", object([]))?;
        let Some(Value::Array(attributes)) = result.get("attributes") else {
            return Err(ServeError::BadResponse { reason: "missing `attributes`".into() });
        };
        attributes
            .iter()
            .map(|a| {
                let name = match a.get("name") {
                    Some(Value::Str(n)) => n.clone(),
                    _ => {
                        return Err(ServeError::BadResponse {
                            reason: "attribute without a name".into(),
                        })
                    }
                };
                let values = match a.get("values") {
                    Some(values) => Vec::<String>::deserialize(values)
                        .map_err(|e| ServeError::BadResponse { reason: e.to_string() })?,
                    None => Vec::new(),
                };
                Ok((name, values))
            })
            .collect()
    }

    /// `query` with name-based target/evidence pairs.
    pub fn query(
        &mut self,
        target: &[(&str, &str)],
        evidence: &[(&str, &str)],
    ) -> Result<QueryAnswer, ServeError> {
        let params =
            object([("target", names_object(target)), ("evidence", names_object(evidence))]);
        let result = self.call("query", params)?;
        QueryAnswer::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `query-batch`: evaluates a whole batch of name-based queries with
    /// **one request line and one response line**.  Every entry is answered
    /// from the same snapshot; per-entry failures (unknown names,
    /// zero-probability evidence, …) come back as per-entry
    /// [`ServeError::Remote`] values without failing the batch.
    ///
    /// Batch entries are lean on the wire: the snapshot identity is
    /// hoisted to the batch envelope (this method copies it back into each
    /// [`QueryAnswer`]) and the rendered description is omitted — the
    /// caller already has the question, so `description` is rebuilt here
    /// from the request pairs.
    pub fn query_batch(
        &mut self,
        queries: &[NamedQuery<'_>],
    ) -> Result<Vec<Result<QueryAnswer, ServeError>>, ServeError> {
        let entries = queries
            .iter()
            .map(|&(target, evidence)| {
                object([("target", names_object(target)), ("evidence", names_object(evidence))])
            })
            .collect();
        let result = self.call("query-batch", object([("queries", Value::Array(entries))]))?;
        let Some(Value::Array(results)) = result.get("results") else {
            return Err(ServeError::BadResponse { reason: "missing `results`".into() });
        };
        if results.len() != queries.len() {
            return Err(ServeError::BadResponse {
                reason: format!("sent {} queries, got {} results", queries.len(), results.len()),
            });
        }
        let envelope_u64 = |name: &str| -> Result<u64, ServeError> {
            result.get(name).and_then(Value::as_u64).ok_or_else(|| ServeError::BadResponse {
                reason: format!("batch result without `{name}`"),
            })
        };
        let snapshot_version = envelope_u64("snapshot_version")?;
        let observations = envelope_u64("observations")?;
        Ok(results
            .iter()
            .zip(queries)
            .map(|(entry, &(target, evidence))| match entry.get("error") {
                Some(error) => {
                    let field = |name: &str| -> String {
                        error
                            .get(name)
                            .and_then(|v| match v {
                                Value::Str(s) => Some(s.clone()),
                                _ => None,
                            })
                            .unwrap_or_default()
                    };
                    Err(ServeError::Remote { code: field("code"), message: field("message") })
                }
                None => {
                    // A data entry is the positional row `[probability,
                    // joint, evidence, prior, lift]`.
                    let Value::Array(fields) = entry else {
                        return Err(ServeError::BadResponse {
                            reason: "batch entry is neither a row nor an error".into(),
                        });
                    };
                    if fields.len() != 5 {
                        return Err(ServeError::BadResponse {
                            reason: format!("batch row has {} of 5 fields", fields.len()),
                        });
                    }
                    let number = |i: usize| -> Result<f64, ServeError> {
                        fields[i].as_f64().ok_or_else(|| ServeError::BadResponse {
                            reason: format!("batch row field {i} is not a number"),
                        })
                    };
                    Ok(QueryAnswer {
                        probability: number(0)?,
                        joint_probability: number(1)?,
                        evidence_probability: number(2)?,
                        prior_probability: number(3)?,
                        lift: fields[4].as_f64(),
                        description: describe_pairs(target, evidence),
                        snapshot_version,
                        observations,
                    })
                }
            })
            .collect())
    }

    /// `explain` with name-based target/evidence pairs; returns the raw
    /// result value (steps, supporting constraints, rendered text).
    pub fn explain(
        &mut self,
        target: &[(&str, &str)],
        evidence: &[(&str, &str)],
    ) -> Result<Value, ServeError> {
        let params =
            object([("target", names_object(target)), ("evidence", names_object(evidence))]);
        self.call("explain", params)
    }

    /// `ingest` a batch of raw rows (value indices).
    pub fn ingest(&mut self, rows: &[Vec<usize>]) -> Result<IngestSummary, ServeError> {
        let rows_value = Value::Array(
            rows.iter()
                .map(|row| Value::Array(row.iter().map(|&v| Value::U64(v as u64)).collect()))
                .collect(),
        );
        let result = self.call("ingest", object([("rows", rows_value)]))?;
        IngestSummary::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `refresh`: force a refit now.
    pub fn refresh(&mut self) -> Result<RefitSummary, ServeError> {
        let result = self.call("refresh", object([]))?;
        RefitSummary::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `stats`: engine counters (the full raw value is available via
    /// [`LineClient::call`]).
    pub fn stats(&mut self) -> Result<EngineStats, ServeError> {
        let result = self.call("stats", object([]))?;
        let engine = result
            .get("engine")
            .ok_or_else(|| ServeError::BadResponse { reason: "missing `engine`".into() })?;
        EngineStats::deserialize(engine)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `stats`: connection-side counters (the `server` object), including
    /// the lattice hit/miss totals of the query fast path.
    pub fn server_stats(&mut self) -> Result<ServerStats, ServeError> {
        let result = self.call("stats", object([]))?;
        let server = result
            .get("server")
            .ok_or_else(|| ServeError::BadResponse { reason: "missing `server`".into() })?;
        ServerStats::deserialize(server)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `snapshot-version`: the latest published version, if any.
    pub fn snapshot_version(&mut self) -> Result<Option<u64>, ServeError> {
        let result = self.call("snapshot-version", object([]))?;
        match result.get("snapshot") {
            None | Some(Value::Null) => Ok(None),
            Some(meta) => meta.get("version").and_then(Value::as_u64).map(Some).ok_or_else(|| {
                ServeError::BadResponse { reason: "snapshot without version".into() }
            }),
        }
    }

    /// `shutdown`: asks the server to stop; the server closes this
    /// connection after acknowledging.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.call("shutdown", object([]))?;
        Ok(())
    }

    fn send_line(&mut self, line: &str) -> Result<(), ServeError> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Value, ServeError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::BadResponse { reason: "server closed the connection".into() });
        }
        serde_json::from_str(line.trim_end())
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// Splits a response envelope into result / remote error, checking the
    /// correlation id when one is expected.
    fn unwrap_response(response: Value, expect_id: Option<u64>) -> Result<Value, ServeError> {
        if let Some(expected) = expect_id {
            match response.get("id").and_then(Value::as_u64) {
                Some(id) if id == expected => {}
                other => {
                    return Err(ServeError::BadResponse {
                        reason: format!("expected response id {expected}, got {other:?}"),
                    })
                }
            }
        }
        match response.get("ok") {
            Some(Value::Bool(true)) => Ok(response.get("result").cloned().unwrap_or(Value::Null)),
            Some(Value::Bool(false)) => {
                let error = response.get("error");
                let field = |name: &str| -> String {
                    error
                        .and_then(|e| e.get(name))
                        .and_then(|v| match v {
                            Value::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .unwrap_or_default()
                };
                Err(ServeError::Remote { code: field("code"), message: field("message") })
            }
            _ => Err(ServeError::BadResponse { reason: "response has no `ok` field".into() }),
        }
    }
}

/// Builds a `{"attr": "value"}` object from name pairs.
fn names_object(pairs: &[(&str, &str)]) -> Value {
    Value::Object(pairs.iter().map(|&(a, v)| (a.to_string(), Value::Str(v.to_string()))).collect())
}

/// Client-side rendering of a question, `P(a=x | b=y)` — used for batch
/// answers, whose wire form omits the server-rendered description.
fn describe_pairs(target: &[(&str, &str)], evidence: &[(&str, &str)]) -> String {
    let join = |pairs: &[(&str, &str)]| {
        pairs.iter().map(|&(a, v)| format!("{a}={v}")).collect::<Vec<_>>().join(", ")
    };
    if evidence.is_empty() {
        format!("P({})", join(target))
    } else {
        format!("P({} | {})", join(target), join(evidence))
    }
}
