//! A blocking line-protocol client: the helper the integration tests, the
//! throughput bench and the `pka-serve probe` subcommand all drive the
//! server with.

use crate::error::ServeError;
use crate::protocol::{self, object};
use crate::server::{EngineStats, IngestSummary, RefitSummary, ServerStats, SyncSummary};
use pka_core::KnowledgeBase;
use pka_stream::{CountShard, SnapshotMeta};
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket-level timeouts for a [`LineClient`].
///
/// The defaults match the historical behaviour (no connect/write deadline,
/// 30 s read deadline); fabric components tighten them so a wedged or
/// partitioned peer surfaces as a retryable [`ServeError::Io`] instead of
/// hanging a pump thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection; `None` uses the OS
    /// default (which can be minutes).
    pub connect_timeout: Option<Duration>,
    /// Deadline for each response read; `None` blocks indefinitely.
    pub read_timeout: Option<Duration>,
    /// Deadline for each request write; `None` blocks indefinitely.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: None,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: None,
        }
    }
}

impl ClientConfig {
    /// A uniform deadline on connect, read and write — what the fabric's
    /// retry wrapper uses.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            connect_timeout: Some(deadline),
            read_timeout: Some(deadline),
            write_timeout: Some(deadline),
        }
    }
}

/// The typed answer to a `shard-pull` request: the serving node's local
/// cumulative shard, tagged with its source identity and sequence number.
#[derive(Debug, Clone)]
pub struct ShardPullAnswer {
    /// The serving node's self-declared source name.
    pub source: String,
    /// Monotone sequence number for coordinator-side staleness gating.
    pub seq: u64,
    /// Tuples in the shard (equal to `seq` for a live node).
    pub tuples: u64,
    /// The cumulative local counts.
    pub shard: CountShard,
}

/// One name-based batch query: `(target pairs, evidence pairs)`.
pub type NamedQuery<'a> = (&'a [(&'a str, &'a str)], &'a [(&'a str, &'a str)]);

/// The typed answer to a `query` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// `P(target | evidence)`.
    pub probability: f64,
    /// `P(target, evidence)`.
    pub joint_probability: f64,
    /// `P(evidence)`.
    pub evidence_probability: f64,
    /// The unconditional `P(target)`.
    pub prior_probability: f64,
    /// `probability / prior_probability`, or `None` when the prior is zero
    /// (the server sends `null`; infinity has no JSON representation).
    pub lift: Option<f64>,
    /// Human-readable rendering of the question and answer.
    pub description: String,
    /// Version of the snapshot that answered.
    pub snapshot_version: u64,
    /// Tuples that snapshot was fitted on.
    pub observations: u64,
}

/// A blocking client over one TCP connection.
///
/// Requests are answered in order, so [`LineClient::pipeline`] may send a
/// whole batch before reading any response.
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl LineClient {
    /// Connects to a server with the default [`ClientConfig`] (no connect
    /// deadline, 30 s read deadline — generous so a wedged server fails
    /// tests instead of hanging them).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connects with explicit socket deadlines.  A connect timeout is
    /// applied to each resolved address in turn until one succeeds.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        config: &ClientConfig,
    ) -> Result<Self, ServeError> {
        let writer = match config.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(deadline) => {
                let mut last_err: Option<std::io::Error> = None;
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, deadline) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        return Err(ServeError::Io(last_err.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no socket addresses",
                            )
                        })))
                    }
                }
            }
        };
        writer.set_nodelay(true)?;
        writer.set_read_timeout(config.read_timeout)?;
        writer.set_write_timeout(config.write_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer, next_id: 1 })
    }

    /// Sends one request and returns its `result` (or the server's
    /// structured error as [`ServeError::Remote`]).
    pub fn call(&mut self, method: &str, params: Value) -> Result<Value, ServeError> {
        self.call_ref(method, &params)
    }

    /// [`LineClient::call`] by reference — lets a client re-send a large
    /// params tree (e.g. a standing `query-batch`) without moving or
    /// cloning it.
    pub fn call_ref(&mut self, method: &str, params: &Value) -> Result<Value, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = protocol::request_line(id, method, params);
        self.send_line(&line)?;
        let response = self.read_response()?;
        Self::unwrap_response(response, Some(id))
    }

    /// [`LineClient::call`] with a `deadline_ms` budget in the envelope:
    /// the server answers `deadline-exceeded` instead of doing the work if
    /// the budget runs out while the request is still queued.
    pub fn call_with_deadline(
        &mut self,
        method: &str,
        params: &Value,
        deadline_ms: u64,
    ) -> Result<Value, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = protocol::request_line_with_deadline(id, method, params, Some(deadline_ms));
        self.send_line(&line)?;
        let response = self.read_response()?;
        Self::unwrap_response(response, Some(id))
    }

    /// Sends a raw line verbatim (malformed-input testing) and returns the
    /// parsed response envelope.
    pub fn call_raw(&mut self, line: &str) -> Result<Value, ServeError> {
        self.send_line(line)?;
        self.read_response()
    }

    /// Sends raw bytes plus a newline (e.g. invalid UTF-8) and returns the
    /// parsed response envelope.
    pub fn call_bytes(&mut self, bytes: &[u8]) -> Result<Value, ServeError> {
        let mut framed = Vec::with_capacity(bytes.len() + 1);
        framed.extend_from_slice(bytes);
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.read_response()
    }

    /// Pipelines a batch of `(method, params)` requests: all writes first,
    /// then all reads, in order.
    pub fn pipeline(
        &mut self,
        requests: &[(&str, Value)],
    ) -> Result<Vec<Result<Value, ServeError>>, ServeError> {
        let first_id = self.next_id;
        let mut lines = String::new();
        for (offset, (method, params)) in requests.iter().enumerate() {
            lines.push_str(&protocol::request_line(first_id + offset as u64, method, params));
            lines.push('\n');
        }
        self.next_id += requests.len() as u64;
        self.writer.write_all(lines.as_bytes())?;
        (0..requests.len())
            .map(|offset| {
                let response = self.read_response()?;
                Ok(Self::unwrap_response(response, Some(first_id + offset as u64)))
            })
            .collect()
    }

    /// `ping` → true on pong.
    pub fn ping(&mut self) -> Result<bool, ServeError> {
        let result = self.call("ping", object([]))?;
        Ok(result.get("pong") == Some(&Value::Bool(true)))
    }

    /// The server's schema as `(attribute, values)` name lists.
    pub fn schema(&mut self) -> Result<Vec<(String, Vec<String>)>, ServeError> {
        let result = self.call("schema", object([]))?;
        let Some(Value::Array(attributes)) = result.get("attributes") else {
            return Err(ServeError::BadResponse { reason: "missing `attributes`".into() });
        };
        attributes
            .iter()
            .map(|a| {
                let name = match a.get("name") {
                    Some(Value::Str(n)) => n.clone(),
                    _ => {
                        return Err(ServeError::BadResponse {
                            reason: "attribute without a name".into(),
                        })
                    }
                };
                let values = match a.get("values") {
                    Some(values) => Vec::<String>::deserialize(values)
                        .map_err(|e| ServeError::BadResponse { reason: e.to_string() })?,
                    None => Vec::new(),
                };
                Ok((name, values))
            })
            .collect()
    }

    /// `query` with name-based target/evidence pairs.
    pub fn query(
        &mut self,
        target: &[(&str, &str)],
        evidence: &[(&str, &str)],
    ) -> Result<QueryAnswer, ServeError> {
        let params =
            object([("target", names_object(target)), ("evidence", names_object(evidence))]);
        let result = self.call("query", params)?;
        QueryAnswer::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `query-batch`: evaluates a whole batch of name-based queries with
    /// **one request line and one response line**.  Every entry is answered
    /// from the same snapshot; per-entry failures (unknown names,
    /// zero-probability evidence, …) come back as per-entry
    /// [`ServeError::Remote`] values without failing the batch.
    ///
    /// Batch entries are lean on the wire: the snapshot identity is
    /// hoisted to the batch envelope (this method copies it back into each
    /// [`QueryAnswer`]) and the rendered description is omitted — the
    /// caller already has the question, so `description` is rebuilt here
    /// from the request pairs.
    pub fn query_batch(
        &mut self,
        queries: &[NamedQuery<'_>],
    ) -> Result<Vec<Result<QueryAnswer, ServeError>>, ServeError> {
        let entries = queries
            .iter()
            .map(|&(target, evidence)| {
                object([("target", names_object(target)), ("evidence", names_object(evidence))])
            })
            .collect();
        let result = self.call("query-batch", object([("queries", Value::Array(entries))]))?;
        let Some(Value::Array(results)) = result.get("results") else {
            return Err(ServeError::BadResponse { reason: "missing `results`".into() });
        };
        if results.len() != queries.len() {
            return Err(ServeError::BadResponse {
                reason: format!("sent {} queries, got {} results", queries.len(), results.len()),
            });
        }
        let envelope_u64 = |name: &str| -> Result<u64, ServeError> {
            result.get(name).and_then(Value::as_u64).ok_or_else(|| ServeError::BadResponse {
                reason: format!("batch result without `{name}`"),
            })
        };
        let snapshot_version = envelope_u64("snapshot_version")?;
        let observations = envelope_u64("observations")?;
        Ok(results
            .iter()
            .zip(queries)
            .map(|(entry, &(target, evidence))| match entry.get("error") {
                Some(error) => {
                    let field = |name: &str| -> String {
                        error
                            .get(name)
                            .and_then(|v| match v {
                                Value::Str(s) => Some(s.clone()),
                                _ => None,
                            })
                            .unwrap_or_default()
                    };
                    Err(ServeError::Remote {
                        code: field("code"),
                        message: field("message"),
                        retry_after_ms: None,
                    })
                }
                None => {
                    // A data entry is the positional row `[probability,
                    // joint, evidence, prior, lift]`.
                    let Value::Array(fields) = entry else {
                        return Err(ServeError::BadResponse {
                            reason: "batch entry is neither a row nor an error".into(),
                        });
                    };
                    if fields.len() != 5 {
                        return Err(ServeError::BadResponse {
                            reason: format!("batch row has {} of 5 fields", fields.len()),
                        });
                    }
                    let number = |i: usize| -> Result<f64, ServeError> {
                        fields[i].as_f64().ok_or_else(|| ServeError::BadResponse {
                            reason: format!("batch row field {i} is not a number"),
                        })
                    };
                    Ok(QueryAnswer {
                        probability: number(0)?,
                        joint_probability: number(1)?,
                        evidence_probability: number(2)?,
                        prior_probability: number(3)?,
                        lift: fields[4].as_f64(),
                        description: describe_pairs(target, evidence),
                        snapshot_version,
                        observations,
                    })
                }
            })
            .collect())
    }

    /// `explain` with name-based target/evidence pairs; returns the raw
    /// result value (steps, supporting constraints, rendered text).
    pub fn explain(
        &mut self,
        target: &[(&str, &str)],
        evidence: &[(&str, &str)],
    ) -> Result<Value, ServeError> {
        let params =
            object([("target", names_object(target)), ("evidence", names_object(evidence))]);
        self.call("explain", params)
    }

    /// `ingest` a batch of raw rows (value indices).
    pub fn ingest(&mut self, rows: &[Vec<usize>]) -> Result<IngestSummary, ServeError> {
        let rows_value = Value::Array(
            rows.iter()
                .map(|row| Value::Array(row.iter().map(|&v| Value::U64(v as u64)).collect()))
                .collect(),
        );
        let result = self.call("ingest", object([("rows", rows_value)]))?;
        IngestSummary::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `refresh`: force a refit now.
    pub fn refresh(&mut self) -> Result<RefitSummary, ServeError> {
        let result = self.call("refresh", object([]))?;
        RefitSummary::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `stats`: engine counters (the full raw value is available via
    /// [`LineClient::call`]).
    pub fn stats(&mut self) -> Result<EngineStats, ServeError> {
        let result = self.call("stats", object([]))?;
        let engine = result
            .get("engine")
            .ok_or_else(|| ServeError::BadResponse { reason: "missing `engine`".into() })?;
        EngineStats::deserialize(engine)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `stats`: connection-side counters (the `server` object), including
    /// the lattice hit/miss totals of the query fast path.
    pub fn server_stats(&mut self) -> Result<ServerStats, ServeError> {
        let result = self.call("stats", object([]))?;
        let server = result
            .get("server")
            .ok_or_else(|| ServeError::BadResponse { reason: "missing `server`".into() })?;
        ServerStats::deserialize(server)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `snapshot-version`: the latest published version, if any.
    pub fn snapshot_version(&mut self) -> Result<Option<u64>, ServeError> {
        let result = self.call("snapshot-version", object([]))?;
        match result.get("snapshot") {
            None | Some(Value::Null) => Ok(None),
            Some(meta) => meta.get("version").and_then(Value::as_u64).map(Some).ok_or_else(|| {
                ServeError::BadResponse { reason: "snapshot without version".into() }
            }),
        }
    }

    /// `shard-push`: delivers a source's cumulative [`CountShard`] to a
    /// coordinator (or standalone node) under a monotone sequence number.
    pub fn shard_push(
        &mut self,
        source: &str,
        seq: u64,
        shard: &CountShard,
    ) -> Result<crate::server::ShardPushSummary, ServeError> {
        let params = object([
            ("source", Value::Str(source.to_string())),
            ("seq", Value::U64(seq)),
            ("shard", Serialize::serialize(shard)),
        ]);
        let result = self.call("shard-push", params)?;
        crate::server::ShardPushSummary::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `shard-pull`: fetches the serving node's cumulative local shard.
    pub fn shard_pull(&mut self) -> Result<ShardPullAnswer, ServeError> {
        let result = self.call("shard-pull", object([]))?;
        let source = match result.get("source") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(ServeError::BadResponse { reason: "missing `source`".into() }),
        };
        let field_u64 = |name: &str| -> Result<u64, ServeError> {
            result
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| ServeError::BadResponse { reason: format!("missing `{name}`") })
        };
        let seq = field_u64("seq")?;
        let tuples = field_u64("tuples")?;
        let shard_value = result
            .get("shard")
            .ok_or_else(|| ServeError::BadResponse { reason: "missing `shard`".into() })?;
        let shard = CountShard::from_value(shard_value)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })?;
        Ok(ShardPullAnswer { source, seq, tuples, shard })
    }

    /// `snapshot-sync`: offers a snapshot (meta + knowledge base) to a
    /// replica.  A stale or duplicate offer comes back as
    /// `SyncSummary { applied: false, .. }`, not an error.
    pub fn snapshot_sync(
        &mut self,
        meta: &SnapshotMeta,
        knowledge_base: &KnowledgeBase,
    ) -> Result<SyncSummary, ServeError> {
        let params = object([
            ("meta", Serialize::serialize(meta)),
            ("knowledge_base", Serialize::serialize(knowledge_base)),
        ]);
        let result = self.call("snapshot-sync", params)?;
        SyncSummary::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `snapshot-pull`: fetches the serving node's latest published
    /// snapshot, if any — the replica catch-up path.  The returned
    /// knowledge base has its runtime indexes rebuilt and is ready to use.
    pub fn snapshot_pull(&mut self) -> Result<Option<(SnapshotMeta, KnowledgeBase)>, ServeError> {
        let result = self.call("snapshot-pull", object([]))?;
        match result.get("snapshot") {
            None | Some(Value::Null) => Ok(None),
            Some(snapshot) => {
                let meta_value = snapshot.get("meta").ok_or_else(|| ServeError::BadResponse {
                    reason: "snapshot without `meta`".into(),
                })?;
                let meta = SnapshotMeta::from_value(meta_value)
                    .map_err(|e| ServeError::BadResponse { reason: e.to_string() })?;
                let kb_value = snapshot.get("knowledge_base").ok_or_else(|| {
                    ServeError::BadResponse { reason: "snapshot without `knowledge_base`".into() }
                })?;
                let mut knowledge_base = KnowledgeBase::deserialize(kb_value)
                    .map_err(|e| ServeError::BadResponse { reason: e.to_string() })?;
                knowledge_base.rebuild_indexes();
                Ok(Some((meta, knowledge_base)))
            }
        }
    }

    /// `shutdown`: asks the server to stop; the server closes this
    /// connection after acknowledging.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.call("shutdown", object([]))?;
        Ok(())
    }

    fn send_line(&mut self, line: &str) -> Result<(), ServeError> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Value, ServeError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::BadResponse { reason: "server closed the connection".into() });
        }
        serde_json::from_str(line.trim_end())
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// Splits a response envelope into result / remote error, checking the
    /// correlation id when one is expected.
    fn unwrap_response(response: Value, expect_id: Option<u64>) -> Result<Value, ServeError> {
        if let Some(expected) = expect_id {
            match response.get("id").and_then(Value::as_u64) {
                Some(id) if id == expected => {}
                other => {
                    return Err(ServeError::BadResponse {
                        reason: format!("expected response id {expected}, got {other:?}"),
                    })
                }
            }
        }
        match response.get("ok") {
            Some(Value::Bool(true)) => Ok(response.get("result").cloned().unwrap_or(Value::Null)),
            Some(Value::Bool(false)) => {
                let error = response.get("error");
                let field = |name: &str| -> String {
                    error
                        .and_then(|e| e.get(name))
                        .and_then(|v| match v {
                            Value::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .unwrap_or_default()
                };
                let retry_after_ms =
                    error.and_then(|e| e.get("retry_after_ms")).and_then(Value::as_u64);
                Err(ServeError::Remote {
                    code: field("code"),
                    message: field("message"),
                    retry_after_ms,
                })
            }
            _ => Err(ServeError::BadResponse { reason: "response has no `ok` field".into() }),
        }
    }
}

/// Builds a `{"attr": "value"}` object from name pairs.
fn names_object(pairs: &[(&str, &str)]) -> Value {
    Value::Object(pairs.iter().map(|&(a, v)| (a.to_string(), Value::Str(v.to_string()))).collect())
}

/// Client-side rendering of a question, `P(a=x | b=y)` — used for batch
/// answers, whose wire form omits the server-rendered description.
fn describe_pairs(target: &[(&str, &str)], evidence: &[(&str, &str)]) -> String {
    let join = |pairs: &[(&str, &str)]| {
        pairs.iter().map(|&(a, v)| format!("{a}={v}")).collect::<Vec<_>>().join(", ")
    };
    if evidence.is_empty() {
        format!("P({})", join(target))
    } else {
        format!("P({} | {})", join(target), join(evidence))
    }
}
