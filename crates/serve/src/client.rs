//! A blocking line-protocol client: the helper the integration tests, the
//! throughput bench and the `pka-serve probe` subcommand all drive the
//! server with.

use crate::error::ServeError;
use crate::protocol::{self, object};
use crate::server::{EngineStats, IngestSummary, RefitSummary};
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The typed answer to a `query` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// `P(target | evidence)`.
    pub probability: f64,
    /// `P(target, evidence)`.
    pub joint_probability: f64,
    /// `P(evidence)`.
    pub evidence_probability: f64,
    /// The unconditional `P(target)`.
    pub prior_probability: f64,
    /// `probability / prior_probability`, or `None` when the prior is zero
    /// (the server sends `null`; infinity has no JSON representation).
    pub lift: Option<f64>,
    /// Human-readable rendering of the question and answer.
    pub description: String,
    /// Version of the snapshot that answered.
    pub snapshot_version: u64,
    /// Tuples that snapshot was fitted on.
    pub observations: u64,
}

/// A blocking client over one TCP connection.
///
/// Requests are answered in order, so [`LineClient::pipeline`] may send a
/// whole batch before reading any response.
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl LineClient {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        // A generous timeout so a wedged server fails tests instead of
        // hanging them.
        writer.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer, next_id: 1 })
    }

    /// Sends one request and returns its `result` (or the server's
    /// structured error as [`ServeError::Remote`]).
    pub fn call(&mut self, method: &str, params: Value) -> Result<Value, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = protocol::request_line(id, method, &params);
        self.send_line(&line)?;
        let response = self.read_response()?;
        Self::unwrap_response(response, Some(id))
    }

    /// Sends a raw line verbatim (malformed-input testing) and returns the
    /// parsed response envelope.
    pub fn call_raw(&mut self, line: &str) -> Result<Value, ServeError> {
        self.send_line(line)?;
        self.read_response()
    }

    /// Sends raw bytes plus a newline (e.g. invalid UTF-8) and returns the
    /// parsed response envelope.
    pub fn call_bytes(&mut self, bytes: &[u8]) -> Result<Value, ServeError> {
        let mut framed = Vec::with_capacity(bytes.len() + 1);
        framed.extend_from_slice(bytes);
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.read_response()
    }

    /// Pipelines a batch of `(method, params)` requests: all writes first,
    /// then all reads, in order.
    pub fn pipeline(
        &mut self,
        requests: &[(&str, Value)],
    ) -> Result<Vec<Result<Value, ServeError>>, ServeError> {
        let first_id = self.next_id;
        let mut lines = String::new();
        for (offset, (method, params)) in requests.iter().enumerate() {
            lines.push_str(&protocol::request_line(first_id + offset as u64, method, params));
            lines.push('\n');
        }
        self.next_id += requests.len() as u64;
        self.writer.write_all(lines.as_bytes())?;
        (0..requests.len())
            .map(|offset| {
                let response = self.read_response()?;
                Ok(Self::unwrap_response(response, Some(first_id + offset as u64)))
            })
            .collect()
    }

    /// `ping` → true on pong.
    pub fn ping(&mut self) -> Result<bool, ServeError> {
        let result = self.call("ping", object([]))?;
        Ok(result.get("pong") == Some(&Value::Bool(true)))
    }

    /// The server's schema as `(attribute, values)` name lists.
    pub fn schema(&mut self) -> Result<Vec<(String, Vec<String>)>, ServeError> {
        let result = self.call("schema", object([]))?;
        let Some(Value::Array(attributes)) = result.get("attributes") else {
            return Err(ServeError::BadResponse { reason: "missing `attributes`".into() });
        };
        attributes
            .iter()
            .map(|a| {
                let name = match a.get("name") {
                    Some(Value::Str(n)) => n.clone(),
                    _ => {
                        return Err(ServeError::BadResponse {
                            reason: "attribute without a name".into(),
                        })
                    }
                };
                let values = match a.get("values") {
                    Some(values) => Vec::<String>::deserialize(values)
                        .map_err(|e| ServeError::BadResponse { reason: e.to_string() })?,
                    None => Vec::new(),
                };
                Ok((name, values))
            })
            .collect()
    }

    /// `query` with name-based target/evidence pairs.
    pub fn query(
        &mut self,
        target: &[(&str, &str)],
        evidence: &[(&str, &str)],
    ) -> Result<QueryAnswer, ServeError> {
        let params =
            object([("target", names_object(target)), ("evidence", names_object(evidence))]);
        let result = self.call("query", params)?;
        QueryAnswer::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `explain` with name-based target/evidence pairs; returns the raw
    /// result value (steps, supporting constraints, rendered text).
    pub fn explain(
        &mut self,
        target: &[(&str, &str)],
        evidence: &[(&str, &str)],
    ) -> Result<Value, ServeError> {
        let params =
            object([("target", names_object(target)), ("evidence", names_object(evidence))]);
        self.call("explain", params)
    }

    /// `ingest` a batch of raw rows (value indices).
    pub fn ingest(&mut self, rows: &[Vec<usize>]) -> Result<IngestSummary, ServeError> {
        let rows_value = Value::Array(
            rows.iter()
                .map(|row| Value::Array(row.iter().map(|&v| Value::U64(v as u64)).collect()))
                .collect(),
        );
        let result = self.call("ingest", object([("rows", rows_value)]))?;
        IngestSummary::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `refresh`: force a refit now.
    pub fn refresh(&mut self) -> Result<RefitSummary, ServeError> {
        let result = self.call("refresh", object([]))?;
        RefitSummary::deserialize(&result)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `stats`: engine counters (the full raw value is available via
    /// [`LineClient::call`]).
    pub fn stats(&mut self) -> Result<EngineStats, ServeError> {
        let result = self.call("stats", object([]))?;
        let engine = result
            .get("engine")
            .ok_or_else(|| ServeError::BadResponse { reason: "missing `engine`".into() })?;
        EngineStats::deserialize(engine)
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// `snapshot-version`: the latest published version, if any.
    pub fn snapshot_version(&mut self) -> Result<Option<u64>, ServeError> {
        let result = self.call("snapshot-version", object([]))?;
        match result.get("snapshot") {
            None | Some(Value::Null) => Ok(None),
            Some(meta) => meta.get("version").and_then(Value::as_u64).map(Some).ok_or_else(|| {
                ServeError::BadResponse { reason: "snapshot without version".into() }
            }),
        }
    }

    /// `shutdown`: asks the server to stop; the server closes this
    /// connection after acknowledging.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.call("shutdown", object([]))?;
        Ok(())
    }

    fn send_line(&mut self, line: &str) -> Result<(), ServeError> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Value, ServeError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::BadResponse { reason: "server closed the connection".into() });
        }
        serde_json::from_str(line.trim_end())
            .map_err(|e| ServeError::BadResponse { reason: e.to_string() })
    }

    /// Splits a response envelope into result / remote error, checking the
    /// correlation id when one is expected.
    fn unwrap_response(response: Value, expect_id: Option<u64>) -> Result<Value, ServeError> {
        if let Some(expected) = expect_id {
            match response.get("id").and_then(Value::as_u64) {
                Some(id) if id == expected => {}
                other => {
                    return Err(ServeError::BadResponse {
                        reason: format!("expected response id {expected}, got {other:?}"),
                    })
                }
            }
        }
        match response.get("ok") {
            Some(Value::Bool(true)) => Ok(response.get("result").cloned().unwrap_or(Value::Null)),
            Some(Value::Bool(false)) => {
                let error = response.get("error");
                let field = |name: &str| -> String {
                    error
                        .and_then(|e| e.get(name))
                        .and_then(|v| match v {
                            Value::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .unwrap_or_default()
                };
                Err(ServeError::Remote { code: field("code"), message: field("message") })
            }
            _ => Err(ServeError::BadResponse { reason: "response has no `ok` field".into() }),
        }
    }
}

/// Builds a `{"attr": "value"}` object from name pairs.
fn names_object(pairs: &[(&str, &str)]) -> Value {
    Value::Object(pairs.iter().map(|&(a, v)| (a.to_string(), Value::Str(v.to_string()))).collect())
}
