//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, always in order —
//! so clients may pipeline freely.  See `crates/serve/README.md` for the
//! full schema of every method.
//!
//! ```text
//! → {"id":1,"method":"query","params":{"target":{"cancer":"yes"},"evidence":{"smoking":"smoker"}}}
//! ← {"id":1,"ok":true,"result":{"probability":0.186,...}}
//! → {"id":2,"method":"nope"}
//! ← {"id":2,"ok":false,"error":{"code":"unknown-method","message":"..."}}
//! ```
//!
//! Everything in this module is pure string/value manipulation: no sockets,
//! so the parsing rules are unit-testable in isolation and reusable by the
//! client, the server and the fuzz-style malformed-input tests.

use pka_contingency::{Assignment, Schema};
use serde::Value;

/// Default cap on one request line.  Long enough for bulk ingest batches,
/// short enough that a stuck or malicious client cannot balloon a
/// connection thread's memory.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Machine-readable error codes of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not valid JSON.
    ParseError,
    /// The line is valid JSON but not a valid request envelope.
    InvalidRequest,
    /// The request's `method` is not one the server knows.
    UnknownMethod,
    /// The request's `params` do not fit the method's schema.
    InvalidParams,
    /// No snapshot has been published yet (ingest + refresh first).
    NoSnapshot,
    /// The query or explanation failed to evaluate.
    QueryError,
    /// The ingest or refresh failed.
    IngestError,
    /// The request line exceeded the server's line cap and was discarded.
    OverlongLine,
    /// The request line is not valid UTF-8.
    InvalidUtf8,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The server is at its connection cap and refused the connection
    /// (sent best-effort before the refused socket closes).
    Overloaded,
    /// A fabric payload (`shard-push` shard, `snapshot-sync` meta) declared
    /// a wire `format_version` this build does not speak, or none at all.
    FormatVersion,
    /// The method exists but this server's fabric role does not serve it
    /// (e.g. `ingest` sent to a read replica).
    UnsupportedRole,
    /// The request carried a `deadline_ms` budget that expired before the
    /// server could start working on it.
    DeadlineExceeded,
}

impl ErrorCode {
    /// The code's on-the-wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse-error",
            ErrorCode::InvalidRequest => "invalid-request",
            ErrorCode::UnknownMethod => "unknown-method",
            ErrorCode::InvalidParams => "invalid-params",
            ErrorCode::NoSnapshot => "no-snapshot",
            ErrorCode::QueryError => "query-error",
            ErrorCode::IngestError => "ingest-error",
            ErrorCode::OverlongLine => "overlong-line",
            ErrorCode::InvalidUtf8 => "invalid-utf8",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Overloaded => "server-overloaded",
            ErrorCode::FormatVersion => "format-version-mismatch",
            ErrorCode::UnsupportedRole => "role-unsupported",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

/// A parsed request envelope.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Value,
    /// The method name.
    pub method: String,
    /// Method parameters (an empty object when omitted).
    pub params: Value,
    /// Optional request budget in milliseconds, counted from arrival.  A
    /// request still waiting for the engine when its budget runs out is
    /// answered `deadline-exceeded` instead of occupying the engine.
    pub deadline_ms: Option<u64>,
}

/// Why a line failed to become a [`Request`].
#[derive(Debug, Clone)]
pub struct RequestError {
    /// The protocol error code to answer with.
    pub code: ErrorCode,
    /// Human-readable explanation.
    pub message: String,
    /// The request id, when it could be recovered from the bad line.
    pub id: Value,
    /// Backoff hint carried by shed (`server-overloaded`) refusals.
    pub retry_after_ms: Option<u64>,
}

impl RequestError {
    fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self { code, message: message.into(), id: Value::Null, retry_after_ms: None }
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value: Value = serde_json::from_str(line)
        .map_err(|e| RequestError::new(ErrorCode::ParseError, e.to_string()))?;
    if !matches!(value, Value::Object(_)) {
        return Err(RequestError::new(
            ErrorCode::InvalidRequest,
            format!("a request must be a JSON object, found {}", value.kind()),
        ));
    }
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let method = match value.get("method") {
        Some(Value::Str(m)) => m.clone(),
        Some(other) => {
            return Err(RequestError {
                code: ErrorCode::InvalidRequest,
                message: format!("`method` must be a string, found {}", other.kind()),
                id,
                retry_after_ms: None,
            })
        }
        None => {
            return Err(RequestError {
                code: ErrorCode::InvalidRequest,
                message: "request has no `method` field".to_string(),
                id,
                retry_after_ms: None,
            })
        }
    };
    let params = value.get("params").cloned().unwrap_or_else(|| Value::Object(Vec::new()));
    let deadline_ms = match value.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(v) => match v.as_u64() {
            Some(ms) => Some(ms),
            None => {
                return Err(RequestError {
                    code: ErrorCode::InvalidRequest,
                    message: format!(
                        "`deadline_ms` must be a non-negative integer, found {}",
                        v.kind()
                    ),
                    id,
                    retry_after_ms: None,
                })
            }
        },
    };
    Ok(Request { id, method, params, deadline_ms })
}

/// Builds a JSON object value from `(key, value)` pairs.
pub fn object<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Renders a request line (no trailing newline).  The envelope is written
/// around a single serialisation of `params` — no deep clone of the params
/// tree, which matters for large `query-batch` payloads.
pub fn request_line(id: u64, method: &str, params: &Value) -> String {
    request_line_with_deadline(id, method, params, None)
}

/// [`request_line`] with an optional `deadline_ms` budget in the envelope.
pub fn request_line_with_deadline(
    id: u64,
    method: &str,
    params: &Value,
    deadline_ms: Option<u64>,
) -> String {
    let params_json = serde_json::to_string(params).expect("value serialisation is infallible");
    let method_json = serde_json::to_string(&Value::Str(method.to_string()))
        .expect("value serialisation is infallible");
    let mut line = String::with_capacity(params_json.len() + method_json.len() + 56);
    line.push_str("{\"id\":");
    line.push_str(&id.to_string());
    line.push_str(",\"method\":");
    line.push_str(&method_json);
    if let Some(ms) = deadline_ms {
        line.push_str(",\"deadline_ms\":");
        line.push_str(&ms.to_string());
    }
    line.push_str(",\"params\":");
    line.push_str(&params_json);
    line.push('}');
    line
}

/// Extracts the top-level `method` string from a raw request line without
/// building a JSON value tree.  Used by admission middleware to classify a
/// line on the loop thread before (and whether) it is fully parsed; any
/// line this scan cannot read (malformed, escaped method name, nested-only
/// `method` key) yields `None` and is left for the full parser to refuse.
pub fn peek_method(line: &[u8]) -> Option<&str> {
    match peek_top_level(line, b"method")? {
        PeekToken::Str(body) => std::str::from_utf8(body).ok(),
        PeekToken::Scalar(_) => None,
    }
}

/// Extracts a top-level `deadline_ms` integer from a raw request line, the
/// same way [`peek_method`] reads the method.  Only a plain non-negative
/// integer is readable; anything else is left for the full parser.
pub fn peek_deadline_ms(line: &[u8]) -> Option<u64> {
    match peek_top_level(line, b"deadline_ms")? {
        PeekToken::Scalar(token) => std::str::from_utf8(token).ok()?.parse().ok(),
        PeekToken::Str(_) => None,
    }
}

/// A raw top-level value found by the peek scan: a string body (escapes
/// unresolved — a body containing `\` is never produced) or a bare scalar
/// token (number, `true`, `null`, …).
enum PeekToken<'a> {
    Str(&'a [u8]),
    Scalar(&'a [u8]),
}

/// Depth-1, string-aware scan for `"key": value` in a serialized JSON
/// object, without allocating.  Returns `None` when the key is absent or
/// the line is too mangled to scan.
fn peek_top_level<'a>(line: &'a [u8], key: &[u8]) -> Option<PeekToken<'a>> {
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < line.len() {
        match line[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth = depth.saturating_sub(1),
            b'"' => {
                let start = i + 1;
                let mut j = start;
                let mut has_escape = false;
                while j < line.len() {
                    match line[j] {
                        b'\\' => {
                            has_escape = true;
                            j += 2;
                            continue;
                        }
                        b'"' => break,
                        _ => j += 1,
                    }
                }
                if j >= line.len() {
                    return None;
                }
                let body = &line[start..j];
                i = j + 1;
                // Only a depth-1 string immediately followed by `:` is a
                // top-level key.
                if depth != 1 {
                    continue;
                }
                let mut k = i;
                while k < line.len() && line[k].is_ascii_whitespace() {
                    k += 1;
                }
                if k >= line.len() || line[k] != b':' {
                    continue;
                }
                if has_escape || body != key {
                    continue;
                }
                let mut v = k + 1;
                while v < line.len() && line[v].is_ascii_whitespace() {
                    v += 1;
                }
                if v >= line.len() {
                    return None;
                }
                if line[v] == b'"' {
                    let vstart = v + 1;
                    let mut vend = vstart;
                    while vend < line.len() {
                        match line[vend] {
                            b'\\' => return None,
                            b'"' => return Some(PeekToken::Str(&line[vstart..vend])),
                            _ => vend += 1,
                        }
                    }
                    return None;
                }
                let vstart = v;
                let mut vend = v;
                while vend < line.len()
                    && !matches!(line[vend], b',' | b'}' | b']' | b'{' | b'[')
                    && !line[vend].is_ascii_whitespace()
                {
                    vend += 1;
                }
                return Some(PeekToken::Scalar(&line[vstart..vend]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Renders a success response line (no trailing newline).
pub fn ok_line(id: &Value, result: Value) -> String {
    let envelope = object([("id", id.clone()), ("ok", Value::Bool(true)), ("result", result)]);
    serde_json::to_string(&envelope).expect("value serialisation is infallible")
}

/// Renders an error response line (no trailing newline).
pub fn error_line(id: &Value, code: ErrorCode, message: &str) -> String {
    error_line_full(id, code, message, None)
}

/// Renders an error response line whose error object carries a
/// `retry_after_ms` hint — the shape of a shed (`server-overloaded`)
/// refusal: the client should back off roughly that long before retrying.
pub fn error_line_retry(id: &Value, code: ErrorCode, message: &str, retry_after_ms: u64) -> String {
    error_line_full(id, code, message, Some(retry_after_ms))
}

fn error_line_full(
    id: &Value,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut fields = vec![
        ("code".to_string(), Value::Str(code.as_str().to_string())),
        ("message".to_string(), Value::Str(message.to_string())),
    ];
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms".to_string(), Value::U64(ms)));
    }
    let envelope =
        object([("id", id.clone()), ("ok", Value::Bool(false)), ("error", Value::Object(fields))]);
    serde_json::to_string(&envelope).expect("value serialisation is infallible")
}

/// Interprets a `{"attribute": "value", …}` object (or `null`) as a partial
/// assignment under the schema.
pub fn assignment_from_value(
    schema: &Schema,
    value: &Value,
    what: &str,
) -> Result<Assignment, RequestError> {
    match value {
        Value::Null => Ok(Assignment::empty()),
        Value::Object(fields) => {
            let mut pairs: Vec<(&str, &str)> = Vec::with_capacity(fields.len());
            for (attr, v) in fields {
                let Value::Str(value_name) = v else {
                    return Err(RequestError::new(
                        ErrorCode::InvalidParams,
                        format!(
                            "`{what}.{attr}` must be a value name (string), found {}",
                            v.kind()
                        ),
                    ));
                };
                pairs.push((attr.as_str(), value_name.as_str()));
            }
            Assignment::from_names(schema, &pairs).map_err(|e| {
                RequestError::new(ErrorCode::InvalidParams, format!("bad `{what}`: {e}"))
            })
        }
        other => Err(RequestError::new(
            ErrorCode::InvalidParams,
            format!("`{what}` must be an object of attribute: value names, found {}", other.kind()),
        )),
    }
}

/// Renders a partial assignment as a `{"attribute": "value", …}` object.
pub fn assignment_to_value(schema: &Schema, assignment: &Assignment) -> Value {
    let fields = assignment
        .pairs()
        .map(|(attr, value)| {
            let a = schema.attribute(attr).expect("assignment validated against schema");
            (a.name().to_string(), Value::Str(a.value_name(value).unwrap_or("?").to_string()))
        })
        .collect();
    Value::Object(fields)
}

/// Interprets `params.rows` as a batch of raw tuples (arrays of value
/// indices).
pub fn rows_from_value(params: &Value) -> Result<Vec<Vec<usize>>, RequestError> {
    let Some(rows_value) = params.get("rows") else {
        return Err(RequestError::new(ErrorCode::InvalidParams, "missing `rows`"));
    };
    let Value::Array(rows) = rows_value else {
        return Err(RequestError::new(
            ErrorCode::InvalidParams,
            format!("`rows` must be an array of rows, found {}", rows_value.kind()),
        ));
    };
    let mut parsed = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let Value::Array(cells) = row else {
            return Err(RequestError::new(
                ErrorCode::InvalidParams,
                format!("`rows[{i}]` must be an array of value indices, found {}", row.kind()),
            ));
        };
        let mut values = Vec::with_capacity(cells.len());
        for (j, cell) in cells.iter().enumerate() {
            let Some(v) = cell.as_u64() else {
                return Err(RequestError::new(
                    ErrorCode::InvalidParams,
                    format!(
                        "`rows[{i}][{j}]` must be a non-negative value index, found {}",
                        cell.kind()
                    ),
                ));
            };
            values.push(v as usize);
        }
        parsed.push(values);
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker"]),
            Attribute::yes_no("cancer"),
        ])
        .unwrap()
    }

    #[test]
    fn request_round_trip() {
        let params = object([("target", object([("cancer", Value::Str("yes".into()))]))]);
        let line = request_line(7, "query", &params);
        let request = parse_request(&line).unwrap();
        assert_eq!(request.method, "query");
        assert_eq!(request.id, Value::U64(7));
        assert_eq!(request.params, params);
    }

    #[test]
    fn malformed_envelopes_are_rejected_with_codes() {
        assert_eq!(parse_request("{").unwrap_err().code, ErrorCode::ParseError);
        assert_eq!(parse_request("42").unwrap_err().code, ErrorCode::InvalidRequest);
        assert_eq!(parse_request("{}").unwrap_err().code, ErrorCode::InvalidRequest);
        let err = parse_request("{\"id\":3,\"method\":7}").unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidRequest);
        assert_eq!(err.id, Value::U64(3), "id recovered for correlation");
    }

    #[test]
    fn response_lines_echo_the_id() {
        let ok = ok_line(&Value::U64(5), object([("pong", Value::Bool(true))]));
        assert_eq!(ok, "{\"id\":5,\"ok\":true,\"result\":{\"pong\":true}}");
        let err = error_line(&Value::Null, ErrorCode::UnknownMethod, "nope");
        assert!(err.contains("\"ok\":false"));
        assert!(err.contains("unknown-method"));
    }

    #[test]
    fn deadline_budget_parses_and_rejects() {
        let line = request_line_with_deadline(9, "ingest", &object([]), Some(250));
        let request = parse_request(&line).unwrap();
        assert_eq!(request.deadline_ms, Some(250));
        assert_eq!(parse_request("{\"id\":1,\"method\":\"ping\"}").unwrap().deadline_ms, None);
        let err = parse_request("{\"id\":1,\"method\":\"ping\",\"deadline_ms\":-5}").unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidRequest);
        assert_eq!(err.id, Value::U64(1));
    }

    #[test]
    fn retry_hint_rides_the_error_object() {
        let line = error_line_retry(&Value::U64(4), ErrorCode::Overloaded, "shed", 120);
        let value: Value = serde_json::from_str(&line).unwrap();
        let error = value.get("error").unwrap();
        assert_eq!(error.get("code"), Some(&Value::Str("server-overloaded".into())));
        assert_eq!(error.get("retry_after_ms"), Some(&Value::U64(120)));
        // The plain builder emits no hint field at all.
        let plain = error_line(&Value::U64(4), ErrorCode::Overloaded, "cap");
        assert!(!plain.contains("retry_after_ms"));
    }

    #[test]
    fn method_peek_reads_only_the_top_level() {
        assert_eq!(peek_method(b"{\"id\":1,\"method\":\"query\",\"params\":{}}"), Some("query"));
        assert_eq!(peek_method(b"{ \"method\" : \"ingest\" }"), Some("ingest"));
        // A nested `method` key must not fool the scan.
        assert_eq!(
            peek_method(b"{\"params\":{\"method\":\"decoy\"},\"method\":\"stats\"}"),
            Some("stats")
        );
        assert_eq!(peek_method(b"{\"params\":{\"method\":\"decoy\"}}"), None);
        // Strings containing braces or escapes don't derail the depth scan.
        assert_eq!(peek_method(b"{\"id\":\"a{b}c\\\"d\",\"method\":\"ping\"}"), Some("ping"));
        assert_eq!(peek_method(b"not json"), None);
        assert_eq!(peek_method(b"{\"method\":42}"), None);
    }

    #[test]
    fn deadline_peek_reads_plain_integers_only() {
        assert_eq!(
            peek_deadline_ms(b"{\"id\":1,\"method\":\"ingest\",\"deadline_ms\":0,\"params\":{}}"),
            Some(0)
        );
        assert_eq!(peek_deadline_ms(b"{\"deadline_ms\": 250 }"), Some(250));
        assert_eq!(peek_deadline_ms(b"{\"method\":\"ping\"}"), None);
        assert_eq!(peek_deadline_ms(b"{\"deadline_ms\":\"soon\"}"), None);
        assert_eq!(peek_deadline_ms(b"{\"params\":{\"deadline_ms\":0}}"), None);
    }

    #[test]
    fn assignments_convert_both_ways() {
        let s = schema();
        let v = object([
            ("cancer", Value::Str("yes".into())),
            ("smoking", Value::Str("smoker".into())),
        ]);
        let a = assignment_from_value(&s, &v, "target").unwrap();
        assert_eq!(a, Assignment::from_pairs([(0, 0), (1, 0)]));
        let back = assignment_to_value(&s, &a);
        assert_eq!(back.get("smoking"), Some(&Value::Str("smoker".into())));
        assert_eq!(back.get("cancer"), Some(&Value::Str("yes".into())));
        // Null means "no evidence".
        assert_eq!(
            assignment_from_value(&s, &Value::Null, "evidence").unwrap(),
            Assignment::empty()
        );
        // Unknown names and wrong shapes are invalid-params.
        let bad = object([("age", Value::Str("old".into()))]);
        assert_eq!(
            assignment_from_value(&s, &bad, "target").unwrap_err().code,
            ErrorCode::InvalidParams
        );
        let not_obj = Value::Str("cancer".into());
        assert_eq!(
            assignment_from_value(&s, &not_obj, "target").unwrap_err().code,
            ErrorCode::InvalidParams
        );
    }

    #[test]
    fn rows_parse_and_reject() {
        let params = object([(
            "rows",
            Value::Array(vec![
                Value::Array(vec![Value::U64(0), Value::U64(1)]),
                Value::Array(vec![Value::U64(1), Value::U64(0)]),
            ]),
        )]);
        assert_eq!(rows_from_value(&params).unwrap(), vec![vec![0, 1], vec![1, 0]]);
        let missing = object([]);
        assert_eq!(rows_from_value(&missing).unwrap_err().code, ErrorCode::InvalidParams);
        let negative = object([("rows", Value::Array(vec![Value::Array(vec![Value::I64(-1)])]))]);
        assert_eq!(rows_from_value(&negative).unwrap_err().code, ErrorCode::InvalidParams);
    }
}
