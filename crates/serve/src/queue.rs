//! The bounded, two-class admission queue in front of the engine thread.
//!
//! PR 8 replaced the unbounded MPSC between the loop shards and the
//! single-writer engine with this queue, which is where overload policy
//! lives: write-class commands (`ingest`, `shard-push`) are admitted up
//! to a configurable cap and **shed** with a structured
//! `server-overloaded` refusal beyond it, while the small control class
//! (`refresh`, `stats`, fabric export/sync) has its own generous cap and
//! is always dequeued first.  Shedding keeps the server live under any
//! offered load: reads never pass through this queue at all (they are
//! answered wait-free from the published snapshot), so an overloaded
//! node degrades to a stale-but-answering knowledge base instead of an
//! unbounded backlog.
//!
//! The queue also carries each command's optional deadline so the engine
//! can refuse work whose budget expired while it waited, and it keeps an
//! EWMA of engine service time so shed refusals can tell the client how
//! long to back off (`retry_after_ms ≈ depth × service time`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Admission class of one engine command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandClass {
    /// Rare, operator- or fabric-initiated work (`refresh`, `stats`,
    /// `shard-pull` export, `snapshot-sync`).  Dequeued before any write
    /// so an overloaded node can still be inspected and refitted.
    Control,
    /// Steady-state mutation traffic (`ingest`, `shard-push`) — the class
    /// that is shed under overload.
    Write,
}

/// One queued command plus its admission metadata.
#[derive(Debug)]
pub struct QueueEntry<T> {
    /// The command itself.
    pub item: T,
    /// When the request's `deadline_ms` budget expires, if it set one.
    pub deadline: Option<Instant>,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRefusal {
    /// The class's queue is full; the command was shed.  `retry_after` is
    /// the server's backoff hint (current depth × EWMA service time,
    /// clamped to a sane range).
    Full {
        /// Suggested client backoff before retrying.
        retry_after: Duration,
    },
    /// Every sender dropped or the queue was closed: the server is
    /// shutting down.
    Closed,
}

/// What a blocking receive produced.
#[derive(Debug)]
pub enum RecvOutcome<T> {
    /// The next command, control class first.
    Item(QueueEntry<T>),
    /// The timeout elapsed with the queue empty (durability tick).
    TimedOut,
    /// Queue empty and closed: every sender is gone, drain is complete.
    Closed,
}

struct QueueState<T> {
    control: VecDeque<QueueEntry<T>>,
    write: VecDeque<QueueEntry<T>>,
    closed: bool,
}

/// Shared core of the bounded queue; see the module docs.  Created via
/// [`engine_channel`], which splits it into a cloneable [`EngineSender`]
/// and this receiver/stats handle.
pub struct EngineQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    write_cap: usize,
    control_cap: usize,
    depth: AtomicU64,
    shed_writes: AtomicU64,
    shed_control: AtomicU64,
    service_ewma_us: AtomicU64,
}

/// Control-class cap: generous relative to realistic control traffic
/// (stats pollers, fabric pumps), small in absolute memory.
const CONTROL_CAP: usize = 256;

/// Bounds on the shed backoff hint.
const MIN_RETRY_AFTER: Duration = Duration::from_millis(10);
const MAX_RETRY_AFTER: Duration = Duration::from_millis(2_000);

/// Starting guess for engine service time before any command completes.
const INITIAL_SERVICE_US: u64 = 500;

impl<T> EngineQueue<T> {
    fn new(write_cap: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                control: VecDeque::new(),
                write: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            write_cap: write_cap.max(1),
            control_cap: CONTROL_CAP,
            depth: AtomicU64::new(0),
            shed_writes: AtomicU64::new(0),
            shed_control: AtomicU64::new(0),
            service_ewma_us: AtomicU64::new(INITIAL_SERVICE_US),
        }
    }

    /// Current queued commands across both classes (a gauge).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// The write-class admission cap.
    pub fn write_cap(&self) -> usize {
        self.write_cap
    }

    /// Write-class commands shed since startup.
    pub fn shed_writes(&self) -> u64 {
        self.shed_writes.load(Ordering::Relaxed)
    }

    /// Control-class commands shed since startup.
    pub fn shed_control(&self) -> u64 {
        self.shed_control.load(Ordering::Relaxed)
    }

    /// Folds one observed engine service time into the EWMA behind the
    /// shed backoff hint (α = 1/4, integer micros).
    pub fn note_service_time(&self, elapsed: Duration) {
        let sample = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let old = self.service_ewma_us.load(Ordering::Relaxed);
        let new = old - old / 4 + sample / 4;
        self.service_ewma_us.store(new.max(1), Ordering::Relaxed);
    }

    /// The backoff hint a shed refusal should carry right now.
    pub fn retry_after(&self) -> Duration {
        let per_item = Duration::from_micros(self.service_ewma_us.load(Ordering::Relaxed));
        let backlog = per_item.saturating_mul(self.depth().min(1 << 20) as u32 + 1);
        backlog.clamp(MIN_RETRY_AFTER, MAX_RETRY_AFTER)
    }

    /// Dequeues the next command — control before write — blocking up to
    /// `timeout` (forever when `None`).
    pub fn recv(&self, timeout: Option<Duration>) -> RecvOutcome<T> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.state.lock().expect("engine queue poisoned");
        loop {
            if let Some(entry) = state.control.pop_front().or_else(|| state.write.pop_front()) {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                return RecvOutcome::Item(entry);
            }
            if state.closed {
                return RecvOutcome::Closed;
            }
            state = match deadline {
                None => self.available.wait(state).expect("engine queue poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return RecvOutcome::TimedOut;
                    }
                    let (guard, result) =
                        self.available.wait_timeout(state, d - now).expect("engine queue poisoned");
                    if result.timed_out()
                        && guard.control.is_empty()
                        && guard.write.is_empty()
                        && !guard.closed
                    {
                        return RecvOutcome::TimedOut;
                    }
                    guard
                }
            };
        }
    }

    /// Removes every queued write-class entry matching `matches`, in queue
    /// order — the batched-absorption drain: after popping one
    /// `shard-push`, the engine collects all others waiting behind it and
    /// merges the whole batch in one pass over the placement map.
    pub fn drain_write_matching(&self, matches: impl Fn(&T) -> bool) -> Vec<QueueEntry<T>> {
        let mut state = self.state.lock().expect("engine queue poisoned");
        let mut drained = Vec::new();
        let mut kept = VecDeque::with_capacity(state.write.len());
        while let Some(entry) = state.write.pop_front() {
            if matches(&entry.item) {
                drained.push(entry);
            } else {
                kept.push_back(entry);
            }
        }
        state.write = kept;
        self.depth.fetch_sub(drained.len() as u64, Ordering::Relaxed);
        drained
    }

    fn push(&self, class: CommandClass, entry: QueueEntry<T>) -> Result<(), PushRefusal> {
        let mut state = self.state.lock().expect("engine queue poisoned");
        if state.closed {
            return Err(PushRefusal::Closed);
        }
        let (queue, cap, shed) = match class {
            CommandClass::Control => (&mut state.control, self.control_cap, &self.shed_control),
            CommandClass::Write => (&mut state.write, self.write_cap, &self.shed_writes),
        };
        if queue.len() >= cap {
            shed.fetch_add(1, Ordering::Relaxed);
            drop(state);
            return Err(PushRefusal::Full { retry_after: self.retry_after() });
        }
        queue.push_back(entry);
        self.depth.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    fn close(&self) {
        self.state.lock().expect("engine queue poisoned").closed = true;
        self.available.notify_all();
    }
}

/// The push side of the queue.  Clones share one sender count; when the
/// last clone drops the queue closes and the engine thread drains out and
/// exits — the same lifecycle contract as the `mpsc::Sender` this
/// replaced (the reactor threads hold the only senders).
pub struct EngineSender<T> {
    queue: Arc<EngineQueue<T>>,
    senders: Arc<AtomicUsize>,
}

impl<T> EngineSender<T> {
    /// Admits one command to its class, or refuses with shed/closed.
    pub fn push(
        &self,
        class: CommandClass,
        item: T,
        deadline: Option<Instant>,
    ) -> Result<(), PushRefusal> {
        self.queue.push(class, QueueEntry { item, deadline })
    }

    /// The shared queue, for stats gauges.
    pub fn queue(&self) -> &Arc<EngineQueue<T>> {
        &self.queue
    }
}

impl<T> Clone for EngineSender<T> {
    fn clone(&self) -> Self {
        self.senders.fetch_add(1, Ordering::Relaxed);
        Self { queue: Arc::clone(&self.queue), senders: Arc::clone(&self.senders) }
    }
}

impl<T> Drop for EngineSender<T> {
    fn drop(&mut self) {
        if self.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.queue.close();
        }
    }
}

/// Builds the queue: a cloneable sender for the service side and the
/// shared queue for the engine/stats side.
pub fn engine_channel<T>(write_cap: usize) -> (EngineSender<T>, Arc<EngineQueue<T>>) {
    let queue = Arc::new(EngineQueue::new(write_cap));
    let sender = EngineSender { queue: Arc::clone(&queue), senders: Arc::new(AtomicUsize::new(1)) };
    (sender, queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::thread;

    #[test]
    fn control_dequeues_before_write() {
        let (tx, queue) = engine_channel::<&'static str>(8);
        tx.push(CommandClass::Write, "w1", None).unwrap();
        tx.push(CommandClass::Write, "w2", None).unwrap();
        tx.push(CommandClass::Control, "c1", None).unwrap();
        let order: Vec<_> = (0..3)
            .map(|_| match queue.recv(Some(Duration::from_secs(1))) {
                RecvOutcome::Item(e) => e.item,
                other => panic!("expected item, got {other:?}"),
            })
            .collect();
        assert_eq!(order, vec!["c1", "w1", "w2"]);
    }

    #[test]
    fn full_write_class_sheds_with_backoff_hint() {
        let (tx, queue) = engine_channel::<u32>(2);
        tx.push(CommandClass::Write, 1, None).unwrap();
        tx.push(CommandClass::Write, 2, None).unwrap();
        match tx.push(CommandClass::Write, 3, None) {
            Err(PushRefusal::Full { retry_after }) => {
                assert!(retry_after >= MIN_RETRY_AFTER);
                assert!(retry_after <= MAX_RETRY_AFTER);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(queue.shed_writes(), 1);
        // Control still admits while writes shed.
        tx.push(CommandClass::Control, 9, None).unwrap();
        assert_eq!(queue.depth(), 3);
    }

    #[test]
    fn last_sender_drop_closes_after_drain() {
        let (tx, queue) = engine_channel::<u32>(4);
        let tx2 = tx.clone();
        tx.push(CommandClass::Write, 7, None).unwrap();
        drop(tx);
        drop(tx2);
        assert!(matches!(queue.recv(None), RecvOutcome::Item(e) if e.item == 7));
        assert!(matches!(queue.recv(None), RecvOutcome::Closed));
        assert!(matches!(engine_channel::<u32>(4).0.push(CommandClass::Write, 0, None), Ok(())));
    }

    #[test]
    fn close_unblocks_a_waiting_receiver() {
        let (tx, queue) = engine_channel::<u32>(4);
        let waiter = thread::spawn(move || matches!(queue.recv(None), RecvOutcome::Closed));
        thread::sleep(Duration::from_millis(50));
        drop(tx);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn drain_collects_only_matching_writes_in_order() {
        let (tx, queue) = engine_channel::<u32>(16);
        for item in [1u32, 10, 2, 11, 3] {
            tx.push(CommandClass::Write, item, None).unwrap();
        }
        tx.push(CommandClass::Control, 99, None).unwrap();
        let drained: Vec<_> =
            queue.drain_write_matching(|&v| v >= 10).into_iter().map(|e| e.item).collect();
        assert_eq!(drained, vec![10, 11]);
        assert_eq!(queue.depth(), 4);
        let rest: Vec<_> = (0..4)
            .map(|_| match queue.recv(Some(Duration::from_secs(1))) {
                RecvOutcome::Item(e) => e.item,
                other => panic!("expected item, got {other:?}"),
            })
            .collect();
        assert_eq!(rest, vec![99, 1, 2, 3]);
    }

    proptest! {
        /// Conservation of offered load: every offered command is either
        /// admitted or counted shed — `admitted + shed == offered` — and
        /// the queue never holds more than its caps.
        #[test]
        fn shed_accounting_conserves_offered_load(
            cap in 1usize..32,
            ops in proptest::collection::vec((0u8..4, 0u8..2), 0..200),
        ) {
            let (tx, queue) = engine_channel::<u64>(cap);
            let mut offered = 0u64;
            let mut admitted = 0u64;
            let mut received = 0u64;
            for (kind, class_bit) in ops {
                if kind == 0 {
                    // Drain one if present.
                    if let RecvOutcome::Item(_) = queue.recv(Some(Duration::ZERO)) {
                        received += 1;
                    }
                    continue;
                }
                let class = if class_bit == 0 { CommandClass::Write } else { CommandClass::Control };
                offered += 1;
                match tx.push(class, offered, None) {
                    Ok(()) => admitted += 1,
                    Err(PushRefusal::Full { retry_after }) => {
                        prop_assert!(retry_after > Duration::ZERO);
                    }
                    Err(PushRefusal::Closed) => prop_assert!(false, "queue closed early"),
                }
                prop_assert!(queue.depth() <= (cap + CONTROL_CAP) as u64);
            }
            let shed = queue.shed_writes() + queue.shed_control();
            prop_assert_eq!(admitted + shed, offered);
            prop_assert_eq!(queue.depth(), admitted - received);
        }

        /// After any push pattern, draining the queue dry yields exactly
        /// the admitted commands.
        #[test]
        fn drain_returns_exactly_the_admitted(
            cap in 1usize..16,
            pushes in 0u64..64,
        ) {
            let (tx, queue) = engine_channel::<u64>(cap);
            let mut admitted = 0u64;
            for i in 0..pushes {
                if tx.push(CommandClass::Write, i, None).is_ok() {
                    admitted += 1;
                }
            }
            prop_assert_eq!(admitted, pushes.min(cap as u64));
            let mut drained = 0u64;
            while let RecvOutcome::Item(_) = queue.recv(Some(Duration::ZERO)) {
                drained += 1;
            }
            prop_assert_eq!(drained, admitted);
            prop_assert_eq!(queue.depth(), 0);
        }
    }
}
