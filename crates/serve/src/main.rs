//! The `pka-serve` binary: a standalone query server plus a `probe`
//! subcommand that exercises a running server end to end (used by CI as the
//! smoke test).
//!
//! ```text
//! pka-serve [--port N] [--host H] [--shards K] [--policy P] \
//!           [--schema SPEC | --cards 3,2,2 | --survey] [--max-line-bytes N] \
//!           [--lattice-order K] [--dense-ceiling N] [--max-order K] \
//!           [--loop-shards K] \
//!           [--max-connections N] \
//!           [--idle-timeout-ms N] [--journal PATH] [--journal-fsync SPEC] \
//!           [--checkpoint PATH] [--checkpoint-interval-ms N] \
//!           [--engine-queue N] [--rate-limit-conn SPEC] \
//!           [--rate-limit-read SPEC] [--rate-limit-write SPEC]
//! pka-serve probe --addr HOST:PORT [--idle-hold N] [--expect-factored] \
//!                 [--shutdown]
//! ```
//!
//! * `--policy` is `manual`, `every=N` or `fraction=F`.
//! * `--journal PATH` records local counts durably before acknowledging
//!   ingest; `--journal-fsync` is `per-record`, `interval=<ms>` or `off`.
//! * `--checkpoint PATH` periodically snapshots the whole engine state
//!   (including the coordinator's shard-placement map); boot restores
//!   from both. `SIGTERM`/`SIGINT` drain gracefully and cut a final
//!   checkpoint.
//! * `--lattice-order` is the marginal-lattice cutoff each published
//!   snapshot materialises for the query fast path (default 2).
//! * `--dense-ceiling` is the joint cell count above which the solver,
//!   lattice build and query fallback all run factored (variable
//!   elimination) instead of dense — `0` forces factored everywhere
//!   (default ~1e6; see `docs/factored.md`).
//! * `--max-order` caps the constraint order the acquisition search
//!   explores per refit (default: the attribute count) — cap it at 2 or 3
//!   on wide schemas, where the candidate space grows combinatorially.
//! * `--schema` is `name=v1|v2|…;name2=…`; `--cards` builds an anonymous
//!   uniform schema; `--survey` is the memo's smoking/cancer/family-history
//!   survey.
//! * `--engine-queue` caps the write-class engine queue (excess `ingest`
//!   / `shard-push` traffic is shed with `server-overloaded`);
//!   `--rate-limit-conn` / `--rate-limit-read` / `--rate-limit-write`
//!   are token buckets, `RATE` or `RATE:BURST` per second.
//! * `--loop-shards`, `--max-connections` and `--idle-timeout-ms` shape
//!   the reactor front end (event loops, connection cap, idle reaping).
//! * `probe --idle-hold N` opens `N` extra idle connections mid-probe and
//!   asserts the server reports them all open — the CI concurrency check.
//! * `probe --expect-factored` issues an above-lattice-order query and
//!   asserts it was answered by factored evaluation with the dense-joint
//!   path never taken (`factored_evals > 0`, `dense_evals == 0`) — the CI
//!   wide-schema check.
//!
//! On startup the server prints `listening on <addr>` to stdout, so a
//! wrapper script can scrape the ephemeral port.

use pka_contingency::{Attribute, Schema};
use pka_serve::{protocol, BucketSpec, LineClient, RateLimitConfig, ServeConfig, Server};
use pka_stream::{FsyncPolicy, RefreshPolicy, StreamConfig};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if args.first().map(String::as_str) == Some("probe") {
        probe(&args[1..])
    } else {
        serve(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pka-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag value` style options out of an argument list.
struct Options {
    args: Vec<(String, Option<String>)>,
}

impl Options {
    fn parse(args: &[String], flags_with_value: &[&str]) -> Result<Self, String> {
        let mut parsed = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if !arg.starts_with("--") {
                return Err(format!("unexpected argument `{arg}`"));
            }
            if flags_with_value.contains(&arg.as_str()) {
                let value = iter.next().ok_or_else(|| format!("`{arg}` needs a value"))?.clone();
                parsed.push((arg.clone(), Some(value)));
            } else {
                parsed.push((arg.clone(), None));
            }
        }
        Ok(Self { args: parsed })
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.args.iter().rev().find(|(name, _)| name == flag).and_then(|(_, v)| v.as_deref())
    }

    fn present(&self, flag: &str) -> bool {
        self.args.iter().any(|(name, _)| name == flag)
    }
}

/// Builds the opt-in admission policy from the `--rate-limit-*` flags
/// (each takes `RATE` or `RATE:BURST`).
fn parse_rate_limits(options: &Options) -> Result<RateLimitConfig, String> {
    let mut rate_limit = RateLimitConfig::default();
    if let Some(spec) = options.value("--rate-limit-conn") {
        rate_limit.per_conn =
            Some(BucketSpec::parse(spec).map_err(|e| format!("bad --rate-limit-conn: {e}"))?);
    }
    if let Some(spec) = options.value("--rate-limit-read") {
        rate_limit.read =
            Some(BucketSpec::parse(spec).map_err(|e| format!("bad --rate-limit-read: {e}"))?);
    }
    if let Some(spec) = options.value("--rate-limit-write") {
        rate_limit.write =
            Some(BucketSpec::parse(spec).map_err(|e| format!("bad --rate-limit-write: {e}"))?);
    }
    Ok(rate_limit)
}

fn serve(args: &[String]) -> Result<(), String> {
    let options = Options::parse(
        args,
        &[
            "--port",
            "--host",
            "--shards",
            "--policy",
            "--schema",
            "--cards",
            "--max-line-bytes",
            "--lattice-order",
            "--dense-ceiling",
            "--max-order",
            "--loop-shards",
            "--max-connections",
            "--idle-timeout-ms",
            "--journal",
            "--journal-fsync",
            "--checkpoint",
            "--checkpoint-interval-ms",
            "--engine-queue",
            "--rate-limit-conn",
            "--rate-limit-read",
            "--rate-limit-write",
        ],
    )?;

    let schema = build_schema(&options)?;
    let mut stream = StreamConfig::new();
    if let Some(shards) = options.value("--shards") {
        stream = stream
            .with_shard_count(shards.parse().map_err(|_| format!("bad --shards `{shards}`"))?);
    }
    if let Some(policy) = options.value("--policy") {
        stream = stream.with_policy(parse_policy(policy)?);
    }
    if let Some(order) = options.value("--lattice-order") {
        stream = stream.with_lattice_order(
            order.parse().map_err(|_| format!("bad --lattice-order `{order}`"))?,
        );
    }
    if let Some(cells) = options.value("--dense-ceiling") {
        stream = stream.with_dense_ceiling(
            cells.parse().map_err(|_| format!("bad --dense-ceiling `{cells}`"))?,
        );
    }
    if let Some(order) = options.value("--max-order") {
        stream =
            stream.with_max_order(order.parse().map_err(|_| format!("bad --max-order `{order}`"))?);
    }
    let mut config = ServeConfig::new().with_stream(stream);
    if let Some(port) = options.value("--port") {
        config = config.with_port(port.parse().map_err(|_| format!("bad --port `{port}`"))?);
    }
    if let Some(host) = options.value("--host") {
        config = config.with_host(host);
    }
    if let Some(max) = options.value("--max-line-bytes") {
        config = config
            .with_max_line_bytes(max.parse().map_err(|_| format!("bad --max-line-bytes `{max}`"))?);
    }
    if let Some(shards) = options.value("--loop-shards") {
        config = config
            .with_loop_shards(shards.parse().map_err(|_| format!("bad --loop-shards `{shards}`"))?);
    }
    if let Some(cap) = options.value("--max-connections") {
        config = config.with_max_connections(
            cap.parse().map_err(|_| format!("bad --max-connections `{cap}`"))?,
        );
    }
    if let Some(idle) = options.value("--idle-timeout-ms") {
        config = config.with_idle_timeout_ms(
            idle.parse().map_err(|_| format!("bad --idle-timeout-ms `{idle}`"))?,
        );
    }
    if let Some(path) = options.value("--journal") {
        config = config.with_journal(path);
    }
    if let Some(spec) = options.value("--journal-fsync") {
        config = config.with_journal_fsync(FsyncPolicy::parse(spec).map_err(|e| e.to_string())?);
    }
    if let Some(path) = options.value("--checkpoint") {
        config = config.with_checkpoint(path);
    }
    if let Some(ms) = options.value("--checkpoint-interval-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad --checkpoint-interval-ms `{ms}`"))?;
        config = config.with_checkpoint_interval(std::time::Duration::from_millis(ms));
    }
    if let Some(cap) = options.value("--engine-queue") {
        config = config
            .with_engine_queue_cap(cap.parse().map_err(|_| format!("bad --engine-queue `{cap}`"))?);
    }
    config = config.with_rate_limit(parse_rate_limits(&options)?);

    let server = Server::start(schema, config).map_err(|e| e.to_string())?;
    println!("listening on {}", server.addr());
    std::io::stdout().flush().ok();
    // SIGTERM/SIGINT request the same graceful drain a client `shutdown`
    // does — the engine thread cuts a final checkpoint before exiting, so
    // orchestrated restarts (systemd, k8s) never lose acknowledged work.
    if let Ok(watch) = pka_net::watch_termination() {
        let trigger = server.shutdown_trigger();
        std::thread::Builder::new()
            .name("pka-serve-signals".to_string())
            .spawn(move || {
                watch.wait();
                trigger.request();
            })
            .map_err(|e| e.to_string())?;
    }
    // Serve until a client sends `shutdown` (or a signal arrives).
    server.wait().map_err(|e| e.to_string())?;
    println!("shut down cleanly");
    Ok(())
}

fn build_schema(options: &Options) -> Result<Arc<Schema>, String> {
    if options.present("--survey") {
        return Ok(Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .map_err(|e| e.to_string())?
        .into_shared());
    }
    if let Some(spec) = options.value("--schema") {
        let mut attributes = Vec::new();
        for attr_spec in spec.split(';').filter(|s| !s.is_empty()) {
            let (name, values) = attr_spec
                .split_once('=')
                .ok_or_else(|| format!("bad --schema attribute `{attr_spec}` (want name=v1|v2)"))?;
            let values: Vec<&str> = values.split('|').filter(|v| !v.is_empty()).collect();
            if values.len() < 2 {
                return Err(format!("attribute `{name}` needs at least two values"));
            }
            attributes.push(Attribute::new(name, values));
        }
        return Ok(Schema::new(attributes).map_err(|e| e.to_string())?.into_shared());
    }
    if let Some(cards) = options.value("--cards") {
        let cardinalities: Vec<usize> = cards
            .split(',')
            .map(|c| c.trim().parse().map_err(|_| format!("bad --cards entry `{c}`")))
            .collect::<Result<_, _>>()?;
        return Ok(Schema::uniform(&cardinalities).map_err(|e| e.to_string())?.into_shared());
    }
    Err("no schema given: pass --schema, --cards or --survey".to_string())
}

fn parse_policy(policy: &str) -> Result<RefreshPolicy, String> {
    if policy == "manual" {
        return Ok(RefreshPolicy::Manual);
    }
    if let Some(n) = policy.strip_prefix("every=") {
        return Ok(RefreshPolicy::EveryNTuples(
            n.parse().map_err(|_| format!("bad policy `{policy}`"))?,
        ));
    }
    if let Some(f) = policy.strip_prefix("fraction=") {
        return Ok(RefreshPolicy::DirtyFraction(
            f.parse().map_err(|_| format!("bad policy `{policy}`"))?,
        ));
    }
    Err(format!("unknown policy `{policy}` (want manual, every=N or fraction=F)"))
}

/// The integration probe: drives every protocol method against a live
/// server, including malformed input, and fails loudly on any surprise.
fn probe(args: &[String]) -> Result<(), String> {
    let options = Options::parse(args, &["--addr", "--idle-hold"])?;
    let addr = options.value("--addr").ok_or("probe needs --addr HOST:PORT")?;
    let mut client = LineClient::connect(addr).map_err(|e| e.to_string())?;

    // 1. Liveness.
    if !client.ping().map_err(|e| format!("ping: {e}"))? {
        return Err("ping did not pong".to_string());
    }
    println!("probe: ping ok");

    // 2. Learn the schema and build a deterministic batch that exercises
    //    every attribute value.
    let schema = client.schema().map_err(|e| format!("schema: {e}"))?;
    if schema.is_empty() {
        return Err("server reported an empty schema".to_string());
    }
    let cards: Vec<usize> = schema.iter().map(|(_, values)| values.len()).collect();
    let rows: Vec<Vec<usize>> =
        (0..256).map(|k| cards.iter().map(|&card| k % card).collect()).collect();

    // 3. Ingest and force a snapshot.
    let ingest = client.ingest(&rows).map_err(|e| format!("ingest: {e}"))?;
    if ingest.accepted != rows.len() as u64 {
        return Err(format!("ingest accepted {} of {} rows", ingest.accepted, rows.len()));
    }
    println!("probe: ingest ok ({} rows)", ingest.accepted);
    if ingest.refit.is_none() {
        let refit = client.refresh().map_err(|e| format!("refresh: {e}"))?;
        println!("probe: refresh ok (version {})", refit.version);
    }
    let version = client
        .snapshot_version()
        .map_err(|e| format!("snapshot-version: {e}"))?
        .ok_or("no snapshot after refresh")?;
    println!("probe: snapshot version {version}");

    // 4. Query and explain against the first attribute.
    let (attr0, values0) = &schema[0];
    let answer = client.query(&[(attr0, &values0[0])], &[]).map_err(|e| format!("query: {e}"))?;
    if !(answer.probability > 0.0 && answer.probability <= 1.0) {
        return Err(format!("marginal probability {} out of range", answer.probability));
    }
    println!("probe: query ok ({} = {:.4})", answer.description, answer.probability);
    if schema.len() > 1 {
        let (attr1, values1) = &schema[1];
        client
            .explain(&[(attr0, &values0[0])], &[(attr1, &values1[0])])
            .map_err(|e| format!("explain: {e}"))?;
        println!("probe: explain ok");
    }

    // 5. A query batch answers every entry from one snapshot, agreeing
    //    with the single-query answer.
    let batch: &[pka_serve::NamedQuery] =
        &[(&[(attr0, &values0[0])], &[]), (&[(attr0, &values0[0])], &[])];
    let batch_answers = client.query_batch(batch).map_err(|e| format!("query-batch: {e}"))?;
    if batch_answers.len() != 2 {
        return Err(format!("query-batch returned {} of 2 answers", batch_answers.len()));
    }
    for entry in &batch_answers {
        let entry = entry.as_ref().map_err(|e| format!("query-batch entry: {e}"))?;
        if (entry.probability - answer.probability).abs() > 1e-12 {
            return Err(format!(
                "query-batch answered {} where query answered {}",
                entry.probability, answer.probability
            ));
        }
    }
    println!("probe: query-batch ok");

    // 6. Malformed input must produce structured errors and leave the
    //    connection usable.
    for (bad, expected) in [
        ("{\"id\":1,\"method\":", "parse-error"),
        ("{\"id\":1,\"method\":\"nope\"}", "unknown-method"),
        ("[]", "invalid-request"),
    ] {
        let response = client.call_raw(bad).map_err(|e| format!("malformed probe: {e}"))?;
        let code = response
            .get("error")
            .and_then(|e| e.get("code"))
            .map(|c| format!("{c:?}"))
            .unwrap_or_default();
        if !code.contains(expected) {
            return Err(format!("malformed line `{bad}` answered {code}, wanted {expected}"));
        }
    }
    if !client.ping().map_err(|e| format!("ping after malformed input: {e}"))? {
        return Err("connection unusable after malformed input".to_string());
    }
    println!("probe: malformed-input handling ok");

    // 7. Stats must reflect the ingest, and the queries above must have
    //    taken the lattice fast path.
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    if stats.total_ingested < rows.len() as u64 {
        return Err(format!(
            "stats report {} ingested, expected >= {}",
            stats.total_ingested,
            rows.len()
        ));
    }
    let server_stats = client.server_stats().map_err(|e| format!("server stats: {e}"))?;
    if server_stats.lattice_hits == 0 {
        return Err("no query was answered from the marginal lattice".to_string());
    }
    println!(
        "probe: stats ok ({} tuples, {} refits, {} lattice hits)",
        stats.total_ingested, stats.refits, server_stats.lattice_hits
    );

    // 8. Optional wide-schema check: an order-3 query misses the default
    //    order-2 lattice, so its fallback evaluation path is observable in
    //    the stats.  On a factored snapshot (schema above the dense
    //    ceiling) that must be variable elimination — and the dense-joint
    //    stride walk must never have run, which is the structural proof
    //    that no dense joint exists to walk.
    if options.present("--expect-factored") {
        if schema.len() < 3 {
            return Err("--expect-factored needs a schema with at least 3 attributes".to_string());
        }
        let (attr1, values1) = &schema[1];
        let (attr2, values2) = &schema[2];
        let deep = client
            .query(&[(attr0, &values0[0]), (attr1, &values1[0])], &[(attr2, &values2[0])])
            .map_err(|e| format!("factored query: {e}"))?;
        if !(deep.probability >= 0.0 && deep.probability <= 1.0) {
            return Err(format!("factored query probability {} out of range", deep.probability));
        }
        let server_stats =
            client.server_stats().map_err(|e| format!("server stats after factored query: {e}"))?;
        if server_stats.factored_evals == 0 {
            return Err("no query was answered by factored evaluation".to_string());
        }
        if server_stats.dense_evals > 0 {
            return Err(format!(
                "{} queries took the dense-joint walk on a snapshot that should not have one",
                server_stats.dense_evals
            ));
        }
        println!(
            "probe: factored path ok ({} factored evals, elimination width {})",
            server_stats.factored_evals, server_stats.elimination_width_max
        );
    }

    // 9. Optional concurrency check: hold N idle connections open at once
    //    and make the server report them, proving the event-loop front end
    //    carries the fan-in without a thread per socket.
    if let Some(hold) = options.value("--idle-hold") {
        let hold: usize = hold.parse().map_err(|_| format!("bad --idle-hold `{hold}`"))?;
        let mut held = Vec::with_capacity(hold);
        for i in 0..hold {
            held.push(
                std::net::TcpStream::connect(addr)
                    .map_err(|e| format!("idle-hold connect {i}: {e}"))?,
            );
        }
        // The last few sockets may still be in flight from the acceptor to
        // their shard; ask over the live protocol connection until the
        // server counts them all.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let open = client
                .server_stats()
                .map_err(|e| format!("server stats during idle-hold: {e}"))?
                .open_connections;
            // `+ 1` for the probe's own protocol connection.
            if open > hold as u64 {
                println!("probe: idle-hold ok ({open} connections open)");
                break;
            }
            if std::time::Instant::now() >= deadline {
                return Err(format!(
                    "held {hold} idle connections but the server only reports {open} open"
                ));
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        drop(held);
    }

    // 10. Pipelined queries all answer in order.
    let batch: Vec<(&str, serde::Value)> =
        (0..16).map(|_| ("ping", protocol::object([]))).collect();
    let responses = client.pipeline(&batch).map_err(|e| format!("pipeline: {e}"))?;
    if responses.len() != 16 || responses.iter().any(|r| r.is_err()) {
        return Err("pipelined requests failed".to_string());
    }
    println!("probe: pipelining ok");

    if options.present("--shutdown") {
        client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        println!("probe: shutdown acknowledged");
    }
    Ok(())
}
