//! The TCP server: a readiness-driven reactor (`pka-net`) over a
//! wait-free read path and a single-writer ingest thread.
//!
//! ## Concurrency shape
//!
//! * **Bounded threads, unbounded connections.**  Connection handling
//!   runs on `pka-net`'s event-loop shards: an acceptor thread hands
//!   nonblocking sockets round-robin to `loop_shards` epoll loops, so
//!   the server's thread count is `loop_shards + 2` (loops + acceptor +
//!   engine) whether ten or ten thousand connections are open.
//! * **Readers never contend.**  Every loop shard answers `query` /
//!   `explain` / `snapshot-version` requests from
//!   [`SnapshotHandle::load`] — a wait-free atomic-pointer load — so a
//!   million concurrent readers cost a refit publish nothing and vice
//!   versa.
//! * **Writes funnel through one thread, without stalling readers.**
//!   The [`StreamingEngine`] is owned by a dedicated engine thread;
//!   `ingest`/`refresh`/`stats` requests are forwarded over a **bounded
//!   two-class queue** ([`crate::queue::EngineQueue`]) with a responder
//!   closure and answered asynchronously through the connection's
//!   [`pka_net::Completion`].  Control commands (`refresh`, `stats`,
//!   fabric export/sync) dequeue before write commands
//!   (`ingest`/`shard-push`); when the write class is at its cap, the
//!   excess is **shed** with a structured `server-overloaded` refusal
//!   carrying a `retry_after_ms` hint instead of queueing without bound.
//!   The loop shard never blocks on the engine: while one connection
//!   awaits a refit, its shard keeps serving every other connection, and
//!   the paused connection's pipelined requests stay buffered so
//!   response order is preserved.
//! * **Degradation is ordered, reads last.**  Under overload the server
//!   sheds write work (stale-but-live knowledge base) while `query` and
//!   the rest of the read path — answered wait-free from the published
//!   snapshot, never through the queue — keep their latency.  Request
//!   `deadline_ms` budgets and opt-in token-bucket rate limits
//!   ([`crate::admission`]) refuse excess work at the loop shard before
//!   it can occupy the engine.
//! * **Robustness policy lives in the reactor.**  Overlong lines,
//!   slow-reader backpressure, idle-connection reaping, the
//!   `max_connections` cap with structured `server-overloaded` refusals,
//!   and the graceful shutdown drain are `pka-net`'s job (see
//!   `docs/net.md`); this module only supplies the protocol semantics
//!   via [`pka_net::LineService`].
//! * **Shutdown is cooperative and leak-free.**  The reactor and the
//!   engine share one shutdown flag; [`ServerHandle::shutdown`] raises
//!   it, joins the reactor (which drains and closes every connection),
//!   then joins the engine thread and returns the engine — if a thread
//!   leaked, shutdown would hang, which is exactly what the CI smoke
//!   test checks with a timeout.

use crate::admission::{AdmissionCounters, DeadlineLayer, RateLimitConfig, RateLimitLayer};
use crate::error::ServeError;
use crate::protocol::{
    self, assignment_from_value, assignment_to_value, error_line, ok_line, parse_request,
    rows_from_value, ErrorCode, Request, DEFAULT_MAX_LINE_BYTES,
};
use crate::queue::{
    engine_channel, CommandClass, EngineQueue, EngineSender, PushRefusal, QueueEntry, RecvOutcome,
};
use pka_contingency::{Assignment, Schema};
use pka_core::{KnowledgeBase, Query};
use pka_expert::explain_query;
use pka_net::{
    Action, Completion, LineMiddleware, LineService, MiddlewareStack, NetConfig, Reactor,
    ReactorHandle, ReactorMetrics,
};
use pka_stream::{
    CountShard, FabricCheckpoint, FsyncPolicy, RefitOutcome, RefitReport, RemoteDelivery,
    ShardJournal, Snapshot, SnapshotHandle, SnapshotMeta, StreamConfig, StreamError,
    StreamingEngine, SyncReport, WIRE_FORMAT_VERSION,
};
use serde::{Deserialize, Serialize, Value};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A server's place in a `pka-fabric` deployment, gating which protocol
/// methods it serves.  Every role answers the full read protocol (`query`,
/// `query-batch`, `explain`, `schema`, `snapshot-version`, `snapshot-pull`,
/// `shard-pull`, `stats`, `ping`); the differences are on the write side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricRole {
    /// A single-node server: everything except `snapshot-sync` (it has no
    /// coordinator to follow).
    #[default]
    Standalone,
    /// Merges local ingest plus remote `shard-push` deliveries and
    /// publishes snapshots for replicas; rejects `snapshot-sync`.
    Coordinator,
    /// Tabulates local `ingest` for export via `shard-pull`; rejects
    /// `shard-push` (it is a leaf, not a merge point) and `snapshot-sync`.
    IngestNode,
    /// Serves reads from snapshots received via `snapshot-sync`; rejects
    /// every local write (`ingest`, `refresh`, `shard-push`).
    Replica,
}

impl FabricRole {
    /// Kebab-case spelling used in stats and role-gate error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            FabricRole::Standalone => "standalone",
            FabricRole::Coordinator => "coordinator",
            FabricRole::IngestNode => "ingest-node",
            FabricRole::Replica => "replica",
        }
    }
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind (default `127.0.0.1`).
    pub host: String,
    /// Port to bind; `0` picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub port: u16,
    /// Configuration of the underlying streaming engine.
    pub stream: StreamConfig,
    /// Cap on one request line; longer lines are discarded and answered
    /// with an `overlong-line` error.
    pub max_line_bytes: usize,
    /// The server's fabric role (default [`FabricRole::Standalone`]).
    pub role: FabricRole,
    /// Name this node reports as the `source` of its `shard-pull` exports;
    /// defaults to the bound address.
    pub node_name: Option<String>,
    /// Event-loop shards the reactor runs (default 2; clamped to ≥ 1).
    pub loop_shards: usize,
    /// Cap on concurrently open connections; further connects are refused
    /// with a structured `server-overloaded` line (default 8192).
    pub max_connections: usize,
    /// Idle-connection timeout in milliseconds; `0` disables reaping
    /// (default 60 000).
    pub idle_timeout_ms: u64,
    /// Write-class cap of the bounded engine queue: at most this many
    /// `ingest`/`shard-push` commands may wait for the engine thread;
    /// further ones are shed with a `server-overloaded` refusal carrying
    /// a `retry_after_ms` hint (default 1024; clamped to ≥ 1).
    pub engine_queue_cap: usize,
    /// Opt-in token-bucket rate limits enforced on the loop shards
    /// (default: all off).
    pub rate_limit: RateLimitConfig,
    /// Crash durability: shard journal and checkpoint wiring (default:
    /// both off — a process-lifetime engine, PR-7 behavior).
    pub durability: DurabilityConfig,
}

/// Durable-state configuration of a [`Server`] — what survives `kill -9`.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Journal of this node's local cumulative counts; every ingest is
    /// recorded before it is acknowledged, and boot resumes from the last
    /// valid record.  `None` disables journalling.
    pub journal_path: Option<PathBuf>,
    /// When journal appends reach stable storage (default: 100 ms
    /// interval — bounded power-loss window at near-zero cost).
    pub journal_fsync: FsyncPolicy,
    /// Periodic checkpoint of the whole engine state (local counts, the
    /// shard-placement map, the published snapshot version); reloaded on
    /// boot.  `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// How often the engine thread checkpoints when state changed
    /// (default 1 s).  A final checkpoint is always written on graceful
    /// shutdown.
    pub checkpoint_interval: Duration,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            journal_path: None,
            journal_fsync: FsyncPolicy::Interval(Duration::from_millis(100)),
            checkpoint_path: None,
            checkpoint_interval: Duration::from_secs(1),
        }
    }
}

impl DurabilityConfig {
    /// True when neither journal nor checkpoint is configured.
    pub fn is_off(&self) -> bool {
        self.journal_path.is_none() && self.checkpoint_path.is_none()
    }
}

impl ServeConfig {
    /// Defaults: loopback, ephemeral port, default engine, 1 MiB lines,
    /// 2 loop shards, 8192 connections, 60 s idle timeout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the port (0 = ephemeral).
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Sets the bind host.
    pub fn with_host(mut self, host: impl Into<String>) -> Self {
        self.host = host.into();
        self
    }

    /// Sets the streaming-engine configuration.
    pub fn with_stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Sets the request-line cap.
    pub fn with_max_line_bytes(mut self, max_line_bytes: usize) -> Self {
        self.max_line_bytes = max_line_bytes;
        self
    }

    /// Sets the fabric role.
    pub fn with_role(mut self, role: FabricRole) -> Self {
        self.role = role;
        self
    }

    /// Sets the node name reported as this server's `shard-pull` source.
    pub fn with_node_name(mut self, node_name: impl Into<String>) -> Self {
        self.node_name = Some(node_name.into());
        self
    }

    /// Sets the number of reactor event-loop shards.
    pub fn with_loop_shards(mut self, loop_shards: usize) -> Self {
        self.loop_shards = loop_shards;
        self
    }

    /// Sets the open-connection cap.
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        self.max_connections = max_connections;
        self
    }

    /// Sets the idle-connection timeout in milliseconds (`0` disables).
    pub fn with_idle_timeout_ms(mut self, idle_timeout_ms: u64) -> Self {
        self.idle_timeout_ms = idle_timeout_ms;
        self
    }

    /// Sets the write-class cap of the bounded engine queue.
    pub fn with_engine_queue_cap(mut self, engine_queue_cap: usize) -> Self {
        self.engine_queue_cap = engine_queue_cap;
        self
    }

    /// Sets the token-bucket rate-limit policy.
    pub fn with_rate_limit(mut self, rate_limit: RateLimitConfig) -> Self {
        self.rate_limit = rate_limit;
        self
    }

    /// Enables the local shard journal at `path`.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.durability.journal_path = Some(path.into());
        self
    }

    /// Sets the journal fsync policy.
    pub fn with_journal_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.durability.journal_fsync = policy;
        self
    }

    /// Enables periodic engine checkpoints at `path`.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.durability.checkpoint_path = Some(path.into());
        self
    }

    /// Sets the checkpoint interval.
    pub fn with_checkpoint_interval(mut self, interval: Duration) -> Self {
        self.durability.checkpoint_interval = interval;
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".to_string(),
            port: 0,
            stream: StreamConfig::default(),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            role: FabricRole::Standalone,
            node_name: None,
            loop_shards: 2,
            max_connections: 8192,
            idle_timeout_ms: 60_000,
            engine_queue_cap: 1024,
            rate_limit: RateLimitConfig::default(),
            durability: DurabilityConfig::default(),
        }
    }
}

/// What one refit produced, in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefitSummary {
    /// Version the produced snapshot was published under.
    pub version: u64,
    /// Whether the refit was warm-started from the previous snapshot.
    pub warm_started: bool,
    /// Tuples the refit was performed over.
    pub observations: u64,
    /// Total constraints in the refitted knowledge base.
    pub constraints: usize,
    /// Solver sweeps spent across the refit.
    pub solver_iterations: usize,
    /// Wall-clock time of the refit, in microseconds.
    pub wall_micros: u64,
}

impl RefitSummary {
    fn from_report(report: &RefitReport) -> Self {
        Self {
            version: report.version,
            warm_started: report.warm_started,
            observations: report.observations,
            constraints: report.constraints,
            solver_iterations: report.solver_iterations,
            wall_micros: report.wall_time.as_micros() as u64,
        }
    }
}

/// What one `ingest` request did, in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestSummary {
    /// Tuples accepted into the shards.
    pub accepted: u64,
    /// Tuples pending (not yet covered by a published fit) afterwards.
    pub pending: u64,
    /// Total tuples ingested over the engine's lifetime.
    pub total_ingested: u64,
    /// Whether the refresh policy tripped on this batch.
    pub refit_triggered: bool,
    /// The completed refit, if one ran and succeeded.
    pub refit: Option<RefitSummary>,
    /// The refit failure, if the policy tripped but the refit failed (the
    /// batch itself **is** absorbed either way).
    pub refit_error: Option<String>,
}

/// What one `shard-push` delivery did, in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardPushSummary {
    /// Whether the delivery replaced the source's held shard (false: it
    /// was stale — older or duplicate sequence — and was discarded).
    pub applied: bool,
    /// Tuples the source gained over its previously-held shard.
    pub delta_tuples: u64,
    /// Tuples now held for the source.
    pub source_tuples: u64,
    /// Tuples pending (not yet covered by a published fit) afterwards.
    pub pending: u64,
    /// Total tuples the receiving engine now counts (local + remote).
    pub total_ingested: u64,
    /// Whether the refresh policy tripped on this delivery.
    pub refit_triggered: bool,
    /// The completed refit, if one ran and succeeded.
    pub refit: Option<RefitSummary>,
    /// The refit failure, if the policy tripped but the refit failed (the
    /// delivery itself **is** absorbed either way).
    pub refit_error: Option<String>,
}

/// What one `snapshot-sync` delivery did, in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncSummary {
    /// Whether the delivery was published (false: its version did not
    /// exceed the replica's current one and it was discarded as stale).
    pub applied: bool,
    /// The replica's current snapshot version after the call.
    pub version: u64,
}

impl SyncSummary {
    fn from_report(report: SyncReport) -> Self {
        Self { applied: report.applied, version: report.version }
    }
}

/// Engine-side counters, in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineStats {
    /// Total tuples ingested over the engine's lifetime.
    pub total_ingested: u64,
    /// Tuples ingested since the last published fit.
    pub pending: u64,
    /// Refits performed so far.
    pub refits: u64,
    /// Solver sweeps spent across every refit so far — together with the
    /// cache counters below, the observable cost of the solver hot path.
    pub solver_sweeps: u64,
    /// Number of count shards.
    pub shard_count: usize,
    /// Per-shard tuple counts.
    pub shard_tuples: Vec<u64>,
    /// Solver incidence-cache full hits (see `pka_maxent::IncidenceCache`).
    pub cache_full_hits: u64,
    /// Solver incidence-cache prefix extensions.
    pub cache_extensions: u64,
    /// Solver incidence-cache rebuilds.
    pub cache_rebuilds: u64,
    /// Remote sources currently holding a slot in the shard-placement map.
    pub remote_sources: usize,
    /// Total tuples held from remote sources.
    pub remote_tuples: u64,
    /// Snapshots accepted via `snapshot-sync` (replicas only).
    pub synced_snapshots: u64,
    /// Count-sources restored from durable state at boot (0 = fresh
    /// start).
    pub recovered_sources: u64,
    /// Tuples restored from durable state at boot.
    pub recovered_tuples: u64,
    /// Bytes of torn/corrupt journal tail discarded during boot recovery.
    pub journal_truncated_bytes: u64,
    /// Journal records appended since boot.
    pub journal_records: u64,
    /// Checkpoints written since boot.
    pub checkpoints_written: u64,
    /// Milliseconds since the *least* recently heard-from remote source
    /// delivered anything (`None` without remote sources).  A growing max
    /// age is the first observable sign of a dead ingest node.
    pub max_push_age_ms: Option<u64>,
    /// Per-source standing of the shard-placement map, in name order.
    pub sources: Vec<SourceStat>,
}

/// One remote source's standing, in wire form (the `sources` array of a
/// coordinator's `stats` response).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceStat {
    /// The source's self-declared name.
    pub name: String,
    /// Highest sequence number accepted from the source.
    pub seq: u64,
    /// Tuples in the source's held cumulative shard.
    pub tuples: u64,
    /// Milliseconds since the source last delivered anything (stale
    /// replays count — they still prove the node is alive).
    pub last_push_age_ms: u64,
}

/// Connection-side counters, in wire form (the `server` object of a
/// `stats` response).  The connection-lifecycle counters come straight
/// from the reactor's [`ReactorMetrics`]; see `docs/net.md` for the
/// taxonomy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections currently open.
    pub open_connections: u64,
    /// Server-initiated closes that were not clean client EOFs (socket
    /// errors, shutdown-drain force-closes, idle reaps).
    pub dropped_connections: u64,
    /// Connections reaped by the idle timeout (subset of
    /// `dropped_connections`).
    pub idle_timeouts: u64,
    /// Connections refused at accept time because the server was at its
    /// `max_connections` cap (never counted in `connections`).
    pub overload_refusals: u64,
    /// Current open-connection count per event-loop shard.
    pub shard_connections: Vec<u64>,
    /// Request lines answered.
    pub requests: u64,
    /// Malformed lines answered with a structured error.
    pub protocol_errors: u64,
    /// Marginal evaluations answered by a snapshot's lattice table (one
    /// index computation + lookup each).
    pub lattice_hits: u64,
    /// Marginal evaluations not covered by the lattice (varset above the
    /// cutoff order); each one is also counted in exactly one of
    /// `dense_evals` / `factored_evals` depending on which fallback ran.
    pub lattice_misses: u64,
    /// Lattice misses answered by the dense-joint stride walk (snapshot at
    /// or below its dense ceiling).
    pub dense_evals: u64,
    /// Lattice misses answered by factored evaluation — one
    /// variable-elimination `FactorGraph::marginal` call each (snapshot
    /// above its dense ceiling; no dense joint exists).
    pub factored_evals: u64,
    /// Largest intermediate-factor width (variables in a single eliminated
    /// table) any factored evaluation has reached on the served snapshots —
    /// the exponent that governs factored query cost.
    pub elimination_width_max: u64,
    /// Commands currently queued for the engine thread, both classes (a
    /// gauge, bounded by `engine_queue_cap` plus the fixed control cap).
    pub engine_queue_depth: u64,
    /// The write-class admission cap of the engine queue.
    pub engine_queue_cap: u64,
    /// Write-class commands (`ingest`, `shard-push`) shed with
    /// `server-overloaded` refusals because the queue was full.
    pub shed_writes: u64,
    /// Control-class commands shed (normally zero; non-zero means the
    /// engine was wedged long enough for even control traffic to pile up).
    pub shed_control: u64,
    /// Requests refused with `deadline-exceeded` because their
    /// `deadline_ms` budget expired before the engine could serve them.
    pub deadline_exceeded: u64,
    /// Requests refused by a token-bucket rate limit (the connection
    /// stays usable; only the excess is refused).
    pub rate_limited: u64,
}

/// How an [`EngineCommand`]'s outcome travels back: a closure built on the
/// loop shard that formats the response line and delivers it through the
/// requesting connection's [`Completion`].  Runs on the engine thread.
type Responder<T> = Box<dyn FnOnce(T) + Send>;

/// A structured refusal travelling back through a responder: the engine
/// failed the work (`ingest-error`), or the command's `deadline_ms`
/// budget expired while it waited in the queue (`deadline-exceeded`).
struct Refusal {
    code: ErrorCode,
    message: String,
}

impl Refusal {
    fn engine(message: String) -> Self {
        Self { code: ErrorCode::IngestError, message }
    }

    fn deadline() -> Self {
        Self {
            code: ErrorCode::DeadlineExceeded,
            message: "deadline_ms budget expired while the request was queued".to_string(),
        }
    }
}

/// Commands forwarded from loop shards to the engine thread.
enum EngineCommand {
    Ingest {
        rows: Vec<Vec<usize>>,
        reply: Responder<Result<IngestSummary, Refusal>>,
    },
    Refresh {
        reply: Responder<Result<RefitSummary, Refusal>>,
    },
    Stats {
        reply: Responder<EngineStats>,
    },
    /// A `shard-push` delivery from a remote ingest node.
    AbsorbShard {
        source: String,
        seq: u64,
        shard: CountShard,
        reply: Responder<Result<ShardPushSummary, Refusal>>,
    },
    /// A `shard-pull` export of the engine's local counts.
    ExportShard {
        reply: Responder<Result<(CountShard, u64), Refusal>>,
    },
    /// A `snapshot-sync` delivery from a coordinator.
    SyncSnapshot {
        meta: SnapshotMeta,
        knowledge_base: Box<KnowledgeBase>,
        reply: Responder<Result<SyncSummary, Refusal>>,
    },
}

/// State shared by the loop shards, the engine responders, and the
/// server handle.
struct Shared {
    schema: Arc<Schema>,
    snapshots: SnapshotHandle,
    role: FabricRole,
    /// Name reported as this node's `shard-pull` source.
    node_name: String,
    /// Shared with the reactor: raising it drains every reactor thread.
    shutdown: Arc<AtomicBool>,
    max_line_bytes: usize,
    /// The reactor's connection telemetry (accepted/open/dropped/...).
    net: Arc<ReactorMetrics>,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    /// Marginal evaluations answered by a snapshot's lattice table
    /// (one lookup each).
    lattice_hits: AtomicU64,
    /// Marginal evaluations not covered by the lattice (varset above the
    /// cutoff order).
    lattice_misses: AtomicU64,
    /// Lattice misses served by the dense-joint stride walk.
    dense_evals: AtomicU64,
    /// Lattice misses served by factored (variable-elimination) evaluation.
    factored_evals: AtomicU64,
    /// Widest intermediate factor any factored evaluation has built
    /// (monotone high-water mark across snapshots).
    elimination_width_max: AtomicU64,
    /// The engine queue's gauges and shed counters (shared with the
    /// engine thread and the senders).
    queue: Arc<EngineQueue<EngineCommand>>,
    /// Rate-limit / deadline refusal counters (shared with the admission
    /// middleware).
    admission: Arc<AdmissionCounters>,
}

/// The current [`ServerStats`], assembled from the shared counters and
/// the reactor's metrics.
fn server_stats(shared: &Shared) -> ServerStats {
    ServerStats {
        connections: shared.net.accepted(),
        open_connections: shared.net.open(),
        dropped_connections: shared.net.dropped(),
        idle_timeouts: shared.net.idle_timeouts(),
        overload_refusals: shared.net.overload_refusals(),
        shard_connections: shared.net.shard_open(),
        requests: shared.requests.load(Ordering::Relaxed),
        protocol_errors: shared.protocol_errors.load(Ordering::Relaxed),
        lattice_hits: shared.lattice_hits.load(Ordering::Relaxed),
        lattice_misses: shared.lattice_misses.load(Ordering::Relaxed),
        dense_evals: shared.dense_evals.load(Ordering::Relaxed),
        factored_evals: shared.factored_evals.load(Ordering::Relaxed),
        elimination_width_max: shared.elimination_width_max.load(Ordering::Relaxed),
        engine_queue_depth: shared.queue.depth(),
        engine_queue_cap: shared.queue.write_cap() as u64,
        shed_writes: shared.queue.shed_writes(),
        shed_control: shared.queue.shed_control(),
        deadline_exceeded: shared.admission.deadline_exceeded.load(Ordering::Relaxed),
        rate_limited: shared.admission.rate_limited.load(Ordering::Relaxed),
    }
}

/// The server constructor namespace.
pub struct Server;

impl Server {
    /// Binds the listener, spawns the engine thread and the reactor
    /// (acceptor + loop shards), and returns a handle.  The server is
    /// serving as soon as this returns.
    pub fn start(schema: Arc<Schema>, config: ServeConfig) -> Result<ServerHandle, ServeError> {
        let mut engine = StreamingEngine::new(Arc::clone(&schema), config.stream.clone())
            .map_err(|e| ServeError::Config { reason: e.to_string() })?;
        // Recovery runs synchronously, before the listener exists: by the
        // time a client can connect, every durable tuple is back.
        let durability = Durability::build(&mut engine, &config.durability)?;
        let snapshots = engine.handle();
        // SO_REUSEADDR bind: a crash-restarted node must be able to
        // reclaim its port through the dead process's TIME_WAIT sockets.
        let listener = pka_net::bind_reuseaddr(config.host.as_str(), config.port)?;
        let addr = listener.local_addr()?;

        let net_config = NetConfig {
            loop_shards: config.loop_shards,
            max_connections: config.max_connections,
            idle_timeout_ms: config.idle_timeout_ms,
            max_line_bytes: config.max_line_bytes,
            write_high_water: NetConfig::default().write_high_water,
        }
        .normalized();
        let metrics = Arc::new(ReactorMetrics::new(net_config.loop_shards));
        let shutdown = Arc::new(AtomicBool::new(false));

        let (engine_tx, queue) = engine_channel::<EngineCommand>(config.engine_queue_cap);
        let engine_queue = Arc::clone(&queue);
        let engine_thread = std::thread::Builder::new()
            .name("pka-serve-engine".to_string())
            .spawn(move || run_engine(engine, engine_queue, durability))?;

        let admission = Arc::new(AdmissionCounters::default());
        let shared = Arc::new(Shared {
            schema,
            snapshots,
            role: config.role,
            node_name: config.node_name.clone().unwrap_or_else(|| addr.to_string()),
            shutdown: Arc::clone(&shutdown),
            max_line_bytes: net_config.max_line_bytes,
            net: Arc::clone(&metrics),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            lattice_hits: AtomicU64::new(0),
            lattice_misses: AtomicU64::new(0),
            dense_evals: AtomicU64::new(0),
            factored_evals: AtomicU64::new(0),
            elimination_width_max: AtomicU64::new(0),
            queue,
            admission: Arc::clone(&admission),
        });
        // The reactor threads hold the only service `Arc`s (and with them
        // the only `EngineCommand` senders outside in-flight responders):
        // when the reactor joins, the senders drop and the engine thread
        // finishes.  The handle deliberately keeps neither.
        //
        // The deadline layer runs before the rate limiter so a request
        // that arrives already expired is refused without spending tokens.
        let mut layers: Vec<Arc<dyn LineMiddleware>> =
            vec![Arc::new(DeadlineLayer::new(Arc::clone(&admission)))];
        if config.rate_limit.is_active() {
            layers.push(Arc::new(RateLimitLayer::new(config.rate_limit, Arc::clone(&admission))));
        }
        let service = Arc::new(MiddlewareStack::new(
            ServeService { shared: Arc::clone(&shared), engine_tx },
            layers,
        ));
        let reactor = Reactor::start(listener, service, net_config, shutdown, metrics)?;

        Ok(ServerHandle { addr, shared, reactor: Some(reactor), engine: Some(engine_thread) })
    }
}

/// A running server.  Dropping the handle shuts the server down (joining
/// every thread); prefer [`ServerHandle::shutdown`] to also recover the
/// engine.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<ReactorHandle>,
    engine: Option<JoinHandle<StreamingEngine>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// A wait-free read handle onto the served snapshots (for in-process
    /// readers and tests).
    pub fn snapshots(&self) -> SnapshotHandle {
        self.shared.snapshots.clone()
    }

    /// The reactor's connection telemetry (also surfaced in `stats`
    /// responses as the `server` object).
    pub fn net_metrics(&self) -> Arc<ReactorMetrics> {
        Arc::clone(&self.shared.net)
    }

    /// True once shutdown has been requested (by this handle or by a
    /// client's `shutdown` request).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the server shuts down (e.g. a client sent `shutdown`),
    /// then joins every thread and returns the engine.
    pub fn wait(mut self) -> Result<StreamingEngine, ServeError> {
        self.join_threads()
    }

    /// Requests shutdown, joins every thread and returns the engine.
    pub fn shutdown(mut self) -> Result<StreamingEngine, ServeError> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join_threads()
    }

    fn join_threads(&mut self) -> Result<StreamingEngine, ServeError> {
        if let Some(mut reactor) = self.reactor.take() {
            // Blocks until the shutdown flag rises (here, or via a client's
            // `shutdown` request) and the drain completes; on return the
            // reactor threads have dropped their service `Arc`s, so the
            // engine thread's channel closes and it exits next.
            reactor.join();
        }
        let engine = self
            .engine
            .take()
            .ok_or(ServeError::EngineDown)?
            .join()
            .map_err(|_| ServeError::Config { reason: "engine thread panicked".into() })?;
        Ok(engine)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.join_threads();
    }
}

/// A cloneable, thread-safe request for graceful shutdown, detached from
/// the [`ServerHandle`]'s lifetime.  A signal-watcher thread holds one and
/// raises it on `SIGTERM`, while the main thread blocks in
/// [`ServerHandle::wait`]; the reactor then drains connections and the
/// engine thread writes its final checkpoint.
#[derive(Debug, Clone)]
pub struct ShutdownTrigger {
    flag: Arc<AtomicBool>,
}

impl ShutdownTrigger {
    /// Requests shutdown.  Idempotent; safe from any thread.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

impl ServerHandle {
    /// A trigger that requests this server's graceful shutdown without
    /// consuming (or outliving concerns about) the handle itself.
    pub fn shutdown_trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger { flag: Arc::clone(&self.shared.shutdown) }
    }
}

/// The engine thread's durability state: the open journal, the checkpoint
/// schedule, and the counters surfaced through `stats`.  Lives on the
/// engine thread, so nothing here needs a lock.
struct Durability {
    journal: Option<ShardJournal>,
    /// Local tuple count covered by the newest journal record (recovered
    /// or appended); appends happen only when the engine's count grows
    /// past it, so replayed batches never re-journal.
    journaled_seq: u64,
    checkpoint_path: Option<PathBuf>,
    checkpoint_interval: Duration,
    last_checkpoint: Instant,
    /// Engine-state fingerprint covered by the last checkpoint; an
    /// unchanged fingerprint skips the write entirely (an idle fabric
    /// costs zero I/O).
    checkpoint_state: (u64, u64, u64),
    journal_records: u64,
    checkpoints_written: u64,
}

impl Durability {
    /// Opens the journal, loads the checkpoint, and restores the engine —
    /// synchronously, before the server binds.  Durable-state damage that
    /// recovery cannot repair (an unreadable checkpoint, a schema
    /// mismatch) refuses to start rather than silently serving a model
    /// that forgot data.
    fn build(
        engine: &mut StreamingEngine,
        config: &DurabilityConfig,
    ) -> Result<Durability, ServeError> {
        let durability_err = |e: StreamError| ServeError::Config { reason: e.to_string() };
        let mut journal = None;
        let mut journal_recovery = None;
        if let Some(path) = &config.journal_path {
            let (j, recovery) =
                ShardJournal::open(path, config.journal_fsync).map_err(durability_err)?;
            journal = Some(j);
            journal_recovery = Some(recovery);
        }
        let mut checkpoint = None;
        if let Some(path) = &config.checkpoint_path {
            // A missing file is a fresh start, not an error: the first
            // checkpoint will create it.
            if path.exists() {
                checkpoint = Some(FabricCheckpoint::load(path).map_err(durability_err)?);
            }
        }
        if journal_recovery.is_some() || checkpoint.is_some() {
            engine.restore(journal_recovery.as_ref(), checkpoint).map_err(durability_err)?;
        }
        Ok(Durability {
            journaled_seq: engine.local_tuples(),
            journal,
            checkpoint_path: config.checkpoint_path.clone(),
            checkpoint_interval: config.checkpoint_interval.max(Duration::from_millis(10)),
            last_checkpoint: Instant::now(),
            checkpoint_state: Self::fingerprint(engine),
            journal_records: 0,
            checkpoints_written: 0,
        })
    }

    /// A cheap digest of everything a checkpoint captures: local counts,
    /// the placement map's cumulative mass, and the snapshot version
    /// (tracked via the refit counter).
    fn fingerprint(engine: &StreamingEngine) -> (u64, u64, u64) {
        let remote: u64 = engine
            .remote_sources()
            .iter()
            .map(|s| s.seq.wrapping_add(s.tuples))
            .fold(0u64, u64::wrapping_add);
        (engine.local_tuples(), remote, engine.refit_count())
    }

    /// How long `run_engine` may block in `recv` before durability work
    /// is due; `None` when nothing ever will be (plain blocking `recv`).
    fn tick_timeout(&self) -> Option<Duration> {
        let journal_due = self.journal.as_ref().and_then(ShardJournal::next_sync_due);
        let checkpoint_due = self
            .checkpoint_path
            .as_ref()
            .map(|_| self.checkpoint_interval.saturating_sub(self.last_checkpoint.elapsed()));
        let due = match (journal_due, checkpoint_due) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        Some(due.max(Duration::from_millis(5)))
    }

    /// Journals the engine's local cumulative shard if it grew.  Called
    /// after a successful ingest, **before** the acknowledgement is sent:
    /// under `FsyncPolicy::PerRecord` the client's `ok` proves the tuples
    /// reached stable storage.
    fn record_local(&mut self, engine: &StreamingEngine) {
        let Some(journal) = self.journal.as_mut() else { return };
        let seq = engine.local_tuples();
        if seq <= self.journaled_seq {
            return;
        }
        let appended = engine
            .export_local_shard()
            .map_err(|e| StreamError::Durability { reason: e.to_string() })
            .and_then(|shard| journal.append(seq, &shard));
        match appended {
            Ok(()) => {
                self.journaled_seq = seq;
                self.journal_records += 1;
            }
            // Non-fatal: the engine already absorbed the batch, and
            // failing the reply would trigger a client resend and a
            // double count.  The next append retries the write.
            Err(e) => eprintln!("pka-serve: journal append failed: {e}"),
        }
    }

    /// Interval housekeeping: flush due journal writes, checkpoint if the
    /// interval elapsed and the engine changed.  Cheap when nothing is
    /// due, so it also runs after every command (a busy engine would
    /// otherwise never hit the `recv` timeout that drives it).
    fn tick(&mut self, engine: &StreamingEngine) {
        if let Some(journal) = self.journal.as_mut() {
            if let Err(e) = journal.sync_if_due() {
                eprintln!("pka-serve: journal sync failed: {e}");
            }
        }
        if self.checkpoint_path.is_some()
            && self.last_checkpoint.elapsed() >= self.checkpoint_interval
        {
            self.checkpoint_now(engine);
        }
    }

    /// Final flush + checkpoint when the engine thread exits (graceful
    /// shutdown): nothing acknowledged is left only in page cache.
    fn finalize(&mut self, engine: &StreamingEngine) {
        if let Some(journal) = self.journal.as_mut() {
            if let Err(e) = journal.sync() {
                eprintln!("pka-serve: final journal sync failed: {e}");
            }
        }
        self.checkpoint_now(engine);
    }

    fn checkpoint_now(&mut self, engine: &StreamingEngine) {
        let Some(path) = self.checkpoint_path.clone() else { return };
        self.last_checkpoint = Instant::now();
        let fingerprint = Self::fingerprint(engine);
        if fingerprint == self.checkpoint_state {
            return;
        }
        match engine.capture_checkpoint().and_then(|cp| cp.save(&path)) {
            Ok(_) => {
                self.checkpoint_state = fingerprint;
                self.checkpoints_written += 1;
            }
            Err(e) => eprintln!("pka-serve: checkpoint write failed: {e}"),
        }
    }
}

/// The engine thread: owns the [`StreamingEngine`], drains commands until
/// every sender is gone (the reactor threads exited, dropping the service
/// and with it the channel), then writes a final checkpoint and returns
/// the engine to [`ServerHandle::shutdown`].  Each command carries a
/// [`Responder`] that formats the response and delivers it to the
/// requesting connection.  Between commands the thread wakes on a
/// durability timer to flush journal writes and cut checkpoints.
fn run_engine(
    mut engine: StreamingEngine,
    queue: Arc<EngineQueue<EngineCommand>>,
    mut durability: Durability,
) -> StreamingEngine {
    loop {
        match queue.recv(durability.tick_timeout()) {
            RecvOutcome::TimedOut => durability.tick(&engine),
            RecvOutcome::Closed => break,
            RecvOutcome::Item(entry) => {
                process_entry(&mut engine, &mut durability, &queue, entry);
                durability.tick(&engine);
            }
        }
    }
    durability.finalize(&engine);
    engine
}

/// Serves one dequeued command: refuse it if its deadline budget expired
/// in the queue, batch-absorb when it is a `shard-push` (draining every
/// other queued push so the whole backlog merges in one pass), and feed
/// the observed service time back into the queue's backoff hint.
fn process_entry(
    engine: &mut StreamingEngine,
    durability: &mut Durability,
    queue: &EngineQueue<EngineCommand>,
    entry: QueueEntry<EngineCommand>,
) {
    let Some(command) = refuse_if_expired(entry) else { return };
    let started = Instant::now();
    if matches!(command, EngineCommand::AbsorbShard { .. }) {
        let mut batch = vec![command];
        batch.extend(
            queue
                .drain_write_matching(|c| matches!(c, EngineCommand::AbsorbShard { .. }))
                .into_iter()
                .filter_map(refuse_if_expired),
        );
        absorb_shard_batch(engine, batch);
    } else {
        handle_command(engine, durability, command);
    }
    queue.note_service_time(started.elapsed());
}

/// Enforces a queued command's `deadline_ms` budget at dequeue time: an
/// expired command is answered `deadline-exceeded` through its responder
/// instead of occupying the engine.
fn refuse_if_expired(entry: QueueEntry<EngineCommand>) -> Option<EngineCommand> {
    if entry.deadline.is_none_or(|d| Instant::now() < d) {
        return Some(entry.item);
    }
    match entry.item {
        EngineCommand::Ingest { reply, .. } => reply(Err(Refusal::deadline())),
        EngineCommand::Refresh { reply } => reply(Err(Refusal::deadline())),
        EngineCommand::AbsorbShard { reply, .. } => reply(Err(Refusal::deadline())),
        EngineCommand::ExportShard { reply } => reply(Err(Refusal::deadline())),
        EngineCommand::SyncSnapshot { reply, .. } => reply(Err(Refusal::deadline())),
        // `stats` never carries a deadline (its responder has no error
        // channel); serve it regardless.
        stats @ EngineCommand::Stats { .. } => return Some(stats),
    }
    None
}

/// Absorbs a batch of `shard-push` deliveries in one engine pass (at most
/// one refit for the whole batch) and answers each through its responder.
fn absorb_shard_batch(engine: &mut StreamingEngine, batch: Vec<EngineCommand>) {
    let mut deliveries = Vec::with_capacity(batch.len());
    let mut replies = Vec::with_capacity(batch.len());
    for command in batch {
        let EngineCommand::AbsorbShard { source, seq, shard, reply } = command else {
            unreachable!("absorb_shard_batch is only fed AbsorbShard commands");
        };
        deliveries.push(RemoteDelivery { source, seq, shard });
        replies.push(reply);
    }
    let outcomes = engine.accept_remote_shards(deliveries);
    for (outcome, reply) in outcomes.into_iter().zip(replies) {
        let outcome = outcome
            .map(|report| {
                let (refit, refit_error, refit_triggered) = match report.refit {
                    RefitOutcome::NotTriggered => (None, None, false),
                    RefitOutcome::Completed(ref r) => {
                        (Some(RefitSummary::from_report(r)), None, true)
                    }
                    RefitOutcome::Failed(ref e) => (None, Some(e.to_string()), true),
                };
                ShardPushSummary {
                    applied: report.applied,
                    delta_tuples: report.delta_tuples,
                    source_tuples: report.source_tuples,
                    pending: engine.pending(),
                    total_ingested: engine.total_ingested(),
                    refit_triggered,
                    refit,
                    refit_error,
                }
            })
            .map_err(|e| Refusal::engine(e.to_string()));
        reply(outcome);
    }
}

fn handle_command(
    engine: &mut StreamingEngine,
    durability: &mut Durability,
    command: EngineCommand,
) {
    match command {
        EngineCommand::Ingest { rows, reply } => {
            let outcome = engine
                .ingest_batch(&rows)
                .map(|report| {
                    let (refit, refit_error, refit_triggered) = match report.refit {
                        RefitOutcome::NotTriggered => (None, None, false),
                        RefitOutcome::Completed(ref r) => {
                            (Some(RefitSummary::from_report(r)), None, true)
                        }
                        RefitOutcome::Failed(ref e) => (None, Some(e.to_string()), true),
                    };
                    IngestSummary {
                        accepted: report.accepted,
                        pending: engine.pending(),
                        total_ingested: engine.total_ingested(),
                        refit_triggered,
                        refit,
                        refit_error,
                    }
                })
                .map_err(|e| Refusal::engine(e.to_string()));
            // Journal before acknowledging: under per-record fsync
            // the `ok` line proves the batch reached stable storage.
            if outcome.is_ok() {
                durability.record_local(engine);
            }
            reply(outcome);
        }
        EngineCommand::Refresh { reply } => {
            let outcome = engine
                .refresh()
                .map(|r| RefitSummary::from_report(&r))
                .map_err(|e| Refusal::engine(e.to_string()));
            reply(outcome);
        }
        EngineCommand::Stats { reply } => {
            let cache = engine.solver_cache_stats();
            let recovery = engine.recovery_stats();
            let sources: Vec<SourceStat> = engine
                .remote_sources()
                .into_iter()
                .map(|s| SourceStat {
                    name: s.name,
                    seq: s.seq,
                    tuples: s.tuples,
                    last_push_age_ms: s.last_push_age.as_millis() as u64,
                })
                .collect();
            let max_push_age_ms = sources.iter().map(|s| s.last_push_age_ms).max();
            reply(EngineStats {
                total_ingested: engine.total_ingested(),
                pending: engine.pending(),
                refits: engine.refit_count(),
                solver_sweeps: engine.total_solver_iterations(),
                shard_count: engine.shard_count(),
                shard_tuples: engine.shard_tuple_counts(),
                cache_full_hits: cache.full_hits,
                cache_extensions: cache.extensions,
                cache_rebuilds: cache.rebuilds,
                remote_sources: engine.remote_source_count(),
                remote_tuples: engine.remote_tuples(),
                synced_snapshots: engine.synced_snapshots(),
                recovered_sources: recovery.recovered_sources,
                recovered_tuples: recovery.recovered_tuples,
                journal_truncated_bytes: recovery.journal_truncated_bytes,
                journal_records: durability.journal_records,
                checkpoints_written: durability.checkpoints_written,
                max_push_age_ms,
                sources,
            });
        }
        command @ EngineCommand::AbsorbShard { .. } => absorb_shard_batch(engine, vec![command]),
        EngineCommand::ExportShard { reply } => {
            let outcome = engine
                .export_local_shard()
                .map(|shard| {
                    let tuples = shard.tuple_count();
                    (shard, tuples)
                })
                .map_err(|e| Refusal::engine(e.to_string()));
            reply(outcome);
        }
        EngineCommand::SyncSnapshot { meta, knowledge_base, reply } => {
            let outcome = engine
                .apply_synced_snapshot(&meta, *knowledge_base)
                .map(SyncSummary::from_report)
                .map_err(|e| Refusal::engine(e.to_string()));
            reply(outcome);
        }
    }
}

/// The protocol implementation behind the reactor's [`LineService`] seam:
/// frames arrive from `pka-net`, responses leave as [`Action`]s (or later
/// through a [`Completion`] for engine-bound methods).
struct ServeService {
    shared: Arc<Shared>,
    engine_tx: EngineSender<EngineCommand>,
}

impl LineService for ServeService {
    fn on_line(&self, line: &[u8], completion: Completion) -> Action {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        respond_to(line, &self.shared, &self.engine_tx, completion)
    }

    fn overlong_response(&self) -> String {
        self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        error_line(
            &Value::Null,
            ErrorCode::OverlongLine,
            &format!(
                "request line exceeded the {}-byte cap and was discarded",
                self.shared.max_line_bytes
            ),
        )
    }

    fn overloaded_response(&self) -> String {
        error_line(
            &Value::Null,
            ErrorCode::Overloaded,
            "server is at its connection cap; retry later or against another node",
        )
    }
}

/// Where one dispatched request's response will come from.
enum Dispatched {
    /// Answered on the loop shard: the `result` value, plus whether the
    /// connection should stay open afterwards.
    Ready(Value, bool),
    /// Shipped to the engine thread with a responder that will answer
    /// through the connection's [`Completion`].
    Deferred,
}

/// Produces the [`Action`] for one raw request line.
fn respond_to(
    raw: &[u8],
    shared: &Arc<Shared>,
    engine_tx: &EngineSender<EngineCommand>,
    completion: Completion,
) -> Action {
    let Ok(text) = std::str::from_utf8(raw) else {
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return Action::Respond(error_line(
            &Value::Null,
            ErrorCode::InvalidUtf8,
            "request line is not valid UTF-8",
        ));
    };
    let request = match parse_request(text) {
        Ok(request) => request,
        Err(e) => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return Action::Respond(error_line(&e.id, e.code, &e.message));
        }
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return Action::RespondClose(error_line(
            &request.id,
            ErrorCode::ShuttingDown,
            "server is shutting down",
        ));
    }
    // A request's `deadline_ms` budget starts counting at parse time; the
    // engine re-checks it at dequeue so queued work whose budget expired
    // is refused instead of served late.
    let expiry = request.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    match dispatch(&request, shared, engine_tx, expiry, completion) {
        Ok(Dispatched::Ready(result, true)) => Action::Respond(ok_line(&request.id, result)),
        Ok(Dispatched::Ready(result, false)) => {
            // `shutdown` acknowledged: raise the flag (starting the
            // reactor's drain) and close this connection once the
            // acknowledgement has flushed.
            shared.shutdown.store(true, Ordering::SeqCst);
            Action::RespondClose(ok_line(&request.id, result))
        }
        Ok(Dispatched::Deferred) => Action::Deferred,
        Err(e) => {
            // Overload sheds and expired budgets are well-formed traffic
            // answered by policy, not protocol misuse; they have their own
            // counters.
            if !matches!(e.code, ErrorCode::Overloaded | ErrorCode::DeadlineExceeded) {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
            // Dispatch errors always belong to this request, whatever id
            // the deeper helper had available.
            let line = match e.retry_after_ms {
                Some(ms) => protocol::error_line_retry(&request.id, e.code, &e.message, ms),
                None => error_line(&request.id, e.code, &e.message),
            };
            Action::Respond(line)
        }
    }
}

/// Builds the responder for an engine command whose success is a plain
/// serialisable summary: format the `ok` line (or an `ingest-error`) and
/// deliver it through the connection's [`Completion`].  Runs on the
/// engine thread.
fn summary_responder<T: Serialize + Send + 'static>(
    request: &Request,
    shared: &Arc<Shared>,
    completion: Completion,
) -> Responder<Result<T, Refusal>> {
    let id = request.id.clone();
    let shared = Arc::clone(shared);
    Box::new(move |outcome| {
        let line = match outcome {
            Ok(summary) => ok_line(&id, Serialize::serialize(&summary)),
            Err(refusal) => {
                note_refusal(&shared, &refusal);
                error_line(&id, refusal.code, &refusal.message)
            }
        };
        completion.respond(line);
    })
}

/// Books one responder-path refusal on the right counter: expired budgets
/// are admission policy (`deadline_exceeded`), everything else is an
/// engine failure counted with the protocol errors.
fn note_refusal(shared: &Shared, refusal: &Refusal) {
    if refusal.code == ErrorCode::DeadlineExceeded {
        shared.admission.note_deadline_exceeded();
    } else {
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Evaluates one request.  Read-path methods answer on the loop shard
/// ([`Dispatched::Ready`]); engine-bound methods ship an [`EngineCommand`]
/// carrying a responder and pause the connection
/// ([`Dispatched::Deferred`]).  An `Err` is always answered on the shard.
fn dispatch(
    request: &Request,
    shared: &Arc<Shared>,
    engine_tx: &EngineSender<EngineCommand>,
    expiry: Option<Instant>,
    completion: Completion,
) -> Result<Dispatched, protocol::RequestError> {
    let open = |v| Ok(Dispatched::Ready(v, true));
    match request.method.as_str() {
        "ping" => open(protocol::object([("pong", Value::Bool(true))])),
        "schema" => open(schema_value(&shared.schema)),
        "snapshot-version" => {
            let meta = shared
                .snapshots
                .load()
                .map(|s| Serialize::serialize(&s.meta()))
                .unwrap_or(Value::Null);
            open(protocol::object([("snapshot", meta)]))
        }
        "query" => {
            let snapshot = shared.snapshots.load().ok_or_else(no_snapshot)?;
            let evaluation = evaluate_query(
                &snapshot,
                param(request, "target"),
                param(request, "evidence"),
                shared,
            )?;
            open(single_query_value(&snapshot, evaluation))
        }
        "query-batch" => {
            let snapshot = shared.snapshots.load().ok_or_else(no_snapshot)?;
            let queries = match request.params.get("queries") {
                Some(Value::Array(queries)) => queries,
                Some(other) => {
                    return Err(invalid_params(&format!(
                        "`queries` must be an array of query objects, found {}",
                        other.kind()
                    )))
                }
                None => return Err(invalid_params("missing `queries`")),
            };
            // One snapshot load for the whole batch: every entry is
            // answered from the same immutable state, so a refit landing
            // mid-batch can never produce torn answers within one response.
            let results: Vec<Value> = queries
                .iter()
                .map(|entry| {
                    let (target, evidence) = match entry {
                        Value::Object(_) => (entry.get("target"), entry.get("evidence")),
                        other => {
                            return batch_error_value(
                                ErrorCode::InvalidParams,
                                &format!(
                                    "a batch entry must be a query object, found {}",
                                    other.kind()
                                ),
                            )
                        }
                    };
                    let null = Value::Null;
                    match evaluate_query(
                        &snapshot,
                        target.unwrap_or(&null),
                        evidence.unwrap_or(&null),
                        shared,
                    ) {
                        Ok(evaluation) => batch_entry_value(evaluation),
                        Err(e) => batch_error_value(e.code, &e.message),
                    }
                })
                .collect();
            open(protocol::object([
                ("count", Value::U64(results.len() as u64)),
                ("results", Value::Array(results)),
                ("snapshot_version", Value::U64(snapshot.version())),
                ("observations", Value::U64(snapshot.observations())),
            ]))
        }
        "explain" => {
            let snapshot = shared.snapshots.load().ok_or_else(no_snapshot)?;
            let kb = snapshot.knowledge_base();
            let schema = kb.schema();
            let target = assignment_from_value(schema, param(request, "target"), "target")?;
            let evidence = assignment_from_value(schema, param(request, "evidence"), "evidence")?;
            if target.vars().is_empty() {
                return Err(invalid_params("`target` must assign at least one attribute"));
            }
            let explanation =
                explain_query(kb, &target, &evidence).map_err(|e| protocol::RequestError {
                    code: ErrorCode::QueryError,
                    message: e.to_string(),
                    id: request.id.clone(),
                    retry_after_ms: None,
                })?;
            let steps = explanation
                .steps
                .iter()
                .map(|step| {
                    protocol::object([
                        ("evidence", assignment_to_value(schema, &step.evidence_so_far)),
                        ("probability", Value::F64(step.probability)),
                    ])
                })
                .collect();
            let constraints = explanation
                .supporting_constraints
                .iter()
                .map(|(cell, p)| {
                    protocol::object([
                        ("cell", assignment_to_value(schema, cell)),
                        ("probability", Value::F64(*p)),
                    ])
                })
                .collect();
            open(protocol::object([
                ("target", assignment_to_value(schema, &explanation.target)),
                ("evidence", assignment_to_value(schema, &explanation.evidence)),
                ("prior", Value::F64(explanation.prior)),
                ("posterior", Value::F64(explanation.posterior)),
                ("lift", lift_value(explanation.posterior, explanation.prior)),
                ("steps", Value::Array(steps)),
                ("supporting_constraints", Value::Array(constraints)),
                ("rendered", Value::Str(explanation.render(schema))),
                ("snapshot_version", Value::U64(snapshot.version())),
            ]))
        }
        "ingest" => {
            require_role(
                request,
                shared,
                &[FabricRole::Standalone, FabricRole::Coordinator, FabricRole::IngestNode],
            )?;
            let rows = rows_from_value(&request.params)?;
            let reply = summary_responder::<IngestSummary>(request, shared, completion);
            send_engine(
                engine_tx,
                CommandClass::Write,
                expiry,
                EngineCommand::Ingest { rows, reply },
                request,
            )?;
            Ok(Dispatched::Deferred)
        }
        "refresh" => {
            require_role(
                request,
                shared,
                &[FabricRole::Standalone, FabricRole::Coordinator, FabricRole::IngestNode],
            )?;
            let reply = summary_responder::<RefitSummary>(request, shared, completion);
            send_engine(
                engine_tx,
                CommandClass::Control,
                expiry,
                EngineCommand::Refresh { reply },
                request,
            )?;
            Ok(Dispatched::Deferred)
        }
        "stats" => {
            let id = request.id.clone();
            let shared = Arc::clone(shared);
            let reply: Responder<EngineStats> = Box::new(move |engine| {
                let snapshot_meta = shared
                    .snapshots
                    .load()
                    .map(|s| Serialize::serialize(&s.meta()))
                    .unwrap_or(Value::Null);
                let result = protocol::object([
                    ("engine", Serialize::serialize(&engine)),
                    ("snapshot", snapshot_meta),
                    ("server", Serialize::serialize(&server_stats(&shared))),
                ]);
                completion.respond(ok_line(&id, result));
            });
            // No deadline: the stats responder has no error channel, and a
            // stats probe is exactly what an operator needs under overload.
            send_engine(
                engine_tx,
                CommandClass::Control,
                None,
                EngineCommand::Stats { reply },
                request,
            )?;
            Ok(Dispatched::Deferred)
        }
        "shard-push" => {
            require_role(request, shared, &[FabricRole::Standalone, FabricRole::Coordinator])?;
            let source = match request.params.get("source") {
                Some(Value::Str(s)) if !s.is_empty() => s.clone(),
                Some(Value::Str(_)) => {
                    return Err(invalid_params("`source` must be a non-empty string"))
                }
                Some(other) => {
                    return Err(invalid_params(&format!(
                        "`source` must be a string, found {}",
                        other.kind()
                    )))
                }
                None => return Err(invalid_params("missing `source`")),
            };
            let seq = match request.params.get("seq") {
                Some(v) => {
                    v.as_u64().ok_or_else(|| invalid_params("`seq` must be an unsigned integer"))?
                }
                None => return Err(invalid_params("missing `seq`")),
            };
            let shard_value =
                request.params.get("shard").ok_or_else(|| invalid_params("missing `shard`"))?;
            let shard = CountShard::from_value(shard_value)
                .map_err(|e| stream_error_to_request(e, request))?;
            let reply = summary_responder::<ShardPushSummary>(request, shared, completion);
            send_engine(
                engine_tx,
                CommandClass::Write,
                expiry,
                EngineCommand::AbsorbShard { source, seq, shard, reply },
                request,
            )?;
            Ok(Dispatched::Deferred)
        }
        "shard-pull" => {
            let id = request.id.clone();
            let shared = Arc::clone(shared);
            let reply: Responder<Result<(CountShard, u64), Refusal>> = Box::new(move |outcome| {
                let line = match outcome {
                    // The local tuple count doubles as the monotone sequence
                    // number: local ingestion only ever grows it, so each
                    // export is tagged with a sequence the coordinator's
                    // placement map can gate on.
                    Ok((shard, tuples)) => ok_line(
                        &id,
                        protocol::object([
                            ("format_version", Value::U64(WIRE_FORMAT_VERSION)),
                            ("source", Value::Str(shared.node_name.clone())),
                            ("seq", Value::U64(tuples)),
                            ("tuples", Value::U64(tuples)),
                            ("shard", Serialize::serialize(&shard)),
                        ]),
                    ),
                    Err(refusal) => {
                        note_refusal(&shared, &refusal);
                        error_line(&id, refusal.code, &refusal.message)
                    }
                };
                completion.respond(line);
            });
            send_engine(
                engine_tx,
                CommandClass::Control,
                expiry,
                EngineCommand::ExportShard { reply },
                request,
            )?;
            Ok(Dispatched::Deferred)
        }
        "snapshot-sync" => {
            require_role(request, shared, &[FabricRole::Replica])?;
            let meta_value =
                request.params.get("meta").ok_or_else(|| invalid_params("missing `meta`"))?;
            let meta = SnapshotMeta::from_value(meta_value)
                .map_err(|e| stream_error_to_request(e, request))?;
            let kb_value = request
                .params
                .get("knowledge_base")
                .ok_or_else(|| invalid_params("missing `knowledge_base`"))?;
            let knowledge_base: KnowledgeBase = Deserialize::deserialize(kb_value)
                .map_err(|e| invalid_params(&format!("`knowledge_base` is malformed: {e}")))?;
            let reply = summary_responder::<SyncSummary>(request, shared, completion);
            send_engine(
                engine_tx,
                CommandClass::Control,
                expiry,
                EngineCommand::SyncSnapshot {
                    meta,
                    knowledge_base: Box::new(knowledge_base),
                    reply,
                },
                request,
            )?;
            Ok(Dispatched::Deferred)
        }
        "snapshot-pull" => {
            // Read-only: served straight off the wait-free snapshot slot,
            // no engine round-trip.
            let snapshot = match shared.snapshots.load() {
                Some(snapshot) => protocol::object([
                    ("meta", Serialize::serialize(&snapshot.meta())),
                    ("knowledge_base", Serialize::serialize(snapshot.knowledge_base())),
                ]),
                None => Value::Null,
            };
            open(protocol::object([
                ("format_version", Value::U64(WIRE_FORMAT_VERSION)),
                ("snapshot", snapshot),
            ]))
        }
        "shutdown" => {
            Ok(Dispatched::Ready(protocol::object([("shutting_down", Value::Bool(true))]), false))
        }
        other => Err(protocol::RequestError {
            code: ErrorCode::UnknownMethod,
            message: format!("unknown method `{other}`"),
            id: request.id.clone(),
            retry_after_ms: None,
        }),
    }
}

/// The numbers of one evaluated `P(target | evidence)` question.
struct QueryEvaluation {
    probability: f64,
    joint_probability: f64,
    evidence_probability: f64,
    prior_probability: f64,
    target: Assignment,
    evidence: Assignment,
}

/// Evaluates one `P(target | evidence)` question against a snapshot —
/// shared by `query` and every `query-batch` entry, so the two paths can
/// never drift apart arithmetically.
///
/// Bayes' identity needs up to three marginal probabilities (evidence,
/// target∪evidence, target); each resolves through
/// [`snapshot_probability`] — a lattice-table lookup when the varset is
/// covered, the dense-joint stride walk otherwise.
fn evaluate_query(
    snapshot: &Snapshot,
    target_value: &Value,
    evidence_value: &Value,
    shared: &Shared,
) -> Result<QueryEvaluation, protocol::RequestError> {
    let schema = snapshot.knowledge_base().schema();
    let target = assignment_from_value(schema, target_value, "target")?;
    let evidence = assignment_from_value(schema, evidence_value, "evidence")?;
    if target.vars().is_empty() {
        return Err(invalid_params("`target` must assign at least one attribute"));
    }
    let query_error = |message: String| protocol::RequestError {
        code: ErrorCode::QueryError,
        message,
        id: Value::Null,
        retry_after_ms: None,
    };
    if !target.compatible_with(&evidence) {
        return Err(query_error(
            "target and evidence assign different values to a shared attribute".into(),
        ));
    }
    let evidence_probability = if evidence.vars().is_empty() {
        1.0
    } else {
        snapshot_probability(snapshot, &evidence, shared)
    };
    if evidence_probability <= 0.0 {
        return Err(query_error(format!(
            "evidence {} has probability zero under the model",
            evidence.describe(schema)
        )));
    }
    let merged = target.merge(&evidence).expect("compatibility checked above");
    let joint_probability = snapshot_probability(snapshot, &merged, shared);
    let prior_probability = snapshot_probability(snapshot, &target, shared);
    Ok(QueryEvaluation {
        probability: joint_probability / evidence_probability,
        joint_probability,
        evidence_probability,
        prior_probability,
        target,
        evidence,
    })
}

/// The Bayes-identity fields every query answer carries.
fn evaluation_fields(evaluation: &QueryEvaluation) -> [(&'static str, Value); 5] {
    [
        ("probability", finite_value(evaluation.probability)),
        ("joint_probability", finite_value(evaluation.joint_probability)),
        ("evidence_probability", finite_value(evaluation.evidence_probability)),
        ("prior_probability", finite_value(evaluation.prior_probability)),
        ("lift", lift_value(evaluation.probability, evaluation.prior_probability)),
    ]
}

/// The full `query` result: the evaluation plus the rendered description
/// and the snapshot identity.
fn single_query_value(snapshot: &Snapshot, evaluation: QueryEvaluation) -> Value {
    let schema = snapshot.knowledge_base().schema();
    let [p, jp, ep, pp, lift] = evaluation_fields(&evaluation);
    let description = Query::conditional(evaluation.target, evaluation.evidence).describe(schema);
    protocol::object([
        p,
        jp,
        ep,
        pp,
        lift,
        ("description", Value::Str(description)),
        ("snapshot_version", Value::U64(snapshot.version())),
        ("observations", Value::U64(snapshot.observations())),
    ])
}

/// One lean `query-batch` entry: the five evaluation numbers in
/// **positional** form, `[probability, joint_probability,
/// evidence_probability, prior_probability, lift]`.
///
/// Three deliberate economies versus the single-`query` result object, all
/// load-bearing for batch throughput: the snapshot identity is hoisted to
/// the batch envelope (identical for every entry by construction — one
/// snapshot load serves the whole batch), the description is omitted (it
/// only re-renders the caller's own question), and the field names are
/// dropped from the wire entirely — positional rows cut the per-entry
/// bytes ~4× and spare both sides hundreds of key parses per line.
fn batch_entry_value(evaluation: QueryEvaluation) -> Value {
    let [p, jp, ep, pp, lift] = evaluation_fields(&evaluation);
    Value::Array(vec![p.1, jp.1, ep.1, pp.1, lift.1])
}

/// One marginal probability off a snapshot: the lattice-table lookup when
/// the assignment's varset is covered (`lattice_hits`); otherwise a
/// `lattice_misses` fallback — the dense-joint stride walk when the
/// snapshot materialised a joint (`dense_evals`), a `FactorGraph::marginal`
/// variable elimination when it did not (`factored_evals`, wide schemas
/// above the dense ceiling).  Either way the read stays wait-free: both
/// fallbacks touch only the immutable snapshot plus relaxed counters.
fn snapshot_probability(snapshot: &Snapshot, assignment: &Assignment, shared: &Shared) -> f64 {
    match snapshot.lattice().probability(assignment) {
        Some(p) => {
            shared.lattice_hits.fetch_add(1, Ordering::Relaxed);
            p
        }
        None => {
            shared.lattice_misses.fetch_add(1, Ordering::Relaxed);
            match snapshot.joint() {
                Some(joint) => {
                    shared.dense_evals.fetch_add(1, Ordering::Relaxed);
                    joint.probability(assignment)
                }
                None => {
                    shared.factored_evals.fetch_add(1, Ordering::Relaxed);
                    let graph = snapshot.factor_graph();
                    let p = graph.probability(assignment);
                    shared
                        .elimination_width_max
                        .fetch_max(graph.elimination_width_max() as u64, Ordering::Relaxed);
                    p
                }
            }
        }
    }
}

/// One failed `query-batch` entry, in wire form: the same `{code, message}`
/// shape as a top-level error, nested so the batch's other entries still
/// answer.
fn batch_error_value(code: ErrorCode, message: &str) -> Value {
    protocol::object([(
        "error",
        protocol::object([
            ("code", Value::Str(code.as_str().to_string())),
            ("message", Value::Str(message.to_string())),
        ]),
    )])
}

/// Lift in wire form: `posterior / prior`, or `null` when the prior is
/// zero — infinity has no JSON representation, and a typed client must be
/// able to round-trip every field the server emits.
fn lift_value(posterior: f64, prior: f64) -> Value {
    if prior > 0.0 {
        finite_value(posterior / prior)
    } else {
        Value::Null
    }
}

/// A probability in wire form, guarded: a non-finite `f64` (impossible for
/// a well-formed snapshot, but the wire contract must not depend on that)
/// serialises as `null` rather than producing invalid JSON.  The vendored
/// serialiser applies the same mapping as a backstop; this makes the
/// contract explicit at the field level.
fn finite_value(x: f64) -> Value {
    if x.is_finite() {
        Value::F64(x)
    } else {
        Value::Null
    }
}

/// The schema in wire form: attribute names and value names, in order.
fn schema_value(schema: &Schema) -> Value {
    let attributes = schema
        .attributes()
        .iter()
        .map(|attribute| {
            protocol::object([
                ("name", Value::Str(attribute.name().to_string())),
                (
                    "values",
                    Value::Array(
                        attribute.values().iter().map(|v| Value::Str(v.clone())).collect(),
                    ),
                ),
            ])
        })
        .collect();
    protocol::object([("attributes", Value::Array(attributes))])
}

fn param<'a>(request: &'a Request, name: &str) -> &'a Value {
    request.params.get(name).unwrap_or(&Value::Null)
}

fn no_snapshot() -> protocol::RequestError {
    protocol::RequestError {
        code: ErrorCode::NoSnapshot,
        message: "no snapshot published yet; ingest data and refresh first".to_string(),
        id: Value::Null,
        retry_after_ms: None,
    }
}

fn invalid_params(message: &str) -> protocol::RequestError {
    protocol::RequestError {
        code: ErrorCode::InvalidParams,
        message: message.to_string(),
        id: Value::Null,
        retry_after_ms: None,
    }
}

/// Rejects a request whose method the node's fabric role does not serve.
fn require_role(
    request: &Request,
    shared: &Shared,
    allowed: &[FabricRole],
) -> Result<(), protocol::RequestError> {
    if allowed.contains(&shared.role) {
        Ok(())
    } else {
        Err(protocol::RequestError {
            code: ErrorCode::UnsupportedRole,
            message: format!(
                "method `{}` is not served by a {} node",
                request.method,
                shared.role.as_str()
            ),
            id: request.id.clone(),
            retry_after_ms: None,
        })
    }
}

/// Maps a payload-parsing [`StreamError`] onto the wire error taxonomy:
/// format-version mismatches keep their structured code so callers can
/// distinguish an incompatible build from a merely malformed payload.
fn stream_error_to_request(error: StreamError, request: &Request) -> protocol::RequestError {
    let code = match error {
        StreamError::FormatVersion { .. } => ErrorCode::FormatVersion,
        _ => ErrorCode::InvalidParams,
    };
    protocol::RequestError {
        code,
        message: error.to_string(),
        id: request.id.clone(),
        retry_after_ms: None,
    }
}

/// Admits one command to the engine queue.  A shed (`Full`) refusal turns
/// into a `server-overloaded` error carrying the queue's backoff hint;
/// dropping the unanswered responder inside the refused command is safe
/// because the caller answers the request on the loop shard instead (the
/// connection was never paused).
fn send_engine(
    engine_tx: &EngineSender<EngineCommand>,
    class: CommandClass,
    deadline: Option<Instant>,
    command: EngineCommand,
    request: &Request,
) -> Result<(), protocol::RequestError> {
    engine_tx.push(class, command, deadline).map_err(|refusal| match refusal {
        PushRefusal::Full { retry_after } => protocol::RequestError {
            code: ErrorCode::Overloaded,
            message: "engine queue is full; request shed".to_string(),
            id: request.id.clone(),
            retry_after_ms: Some((retry_after.as_millis() as u64).max(1)),
        },
        PushRefusal::Closed => protocol::RequestError {
            code: ErrorCode::ShuttingDown,
            message: "engine thread is gone".to_string(),
            id: request.id.clone(),
            retry_after_ms: None,
        },
    })
}
