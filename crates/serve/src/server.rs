//! The TCP server: a thread-per-connection accept loop over a wait-free
//! read path and a single-writer ingest thread.
//!
//! ## Concurrency shape
//!
//! * **Readers never contend.**  Every connection thread answers `query` /
//!   `explain` / `snapshot-version` requests from
//!   [`SnapshotHandle::load`] — a wait-free atomic-pointer load — so a
//!   million concurrent readers cost a refit publish nothing and vice
//!   versa.
//! * **Writes funnel through one thread.**  The [`StreamingEngine`] is
//!   owned by a dedicated engine thread; `ingest`/`refresh`/`stats`
//!   requests are forwarded over an MPSC channel and answered over a
//!   per-request reply channel.  Policy-triggered refits therefore run off
//!   the connection threads, and two clients ingesting concurrently are
//!   serialised without any locking in the engine itself.
//! * **Shutdown is cooperative and leak-free.**  The accept loop and every
//!   connection loop poll a shutdown flag (connections via a short read
//!   timeout); [`ServerHandle::shutdown`] sets the flag, joins the accept
//!   thread (which joins every connection thread), then joins the engine
//!   thread and returns the engine — if a thread leaked, shutdown would
//!   hang, which is exactly what the CI smoke test checks with a timeout.

use crate::error::ServeError;
use crate::protocol::{
    self, assignment_from_value, assignment_to_value, error_line, ok_line, parse_request,
    rows_from_value, ErrorCode, Request, DEFAULT_MAX_LINE_BYTES,
};
use pka_contingency::{Assignment, Schema};
use pka_core::{KnowledgeBase, Query};
use pka_expert::explain_query;
use pka_stream::{
    CountShard, RefitOutcome, RefitReport, Snapshot, SnapshotHandle, SnapshotMeta, StreamConfig,
    StreamError, StreamingEngine, SyncReport, WIRE_FORMAT_VERSION,
};
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocked connection read waits before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// Cap on one blocking response write.  A client that pipelines requests
/// but never reads would otherwise fill the socket buffer and wedge its
/// connection thread in `write_all` forever — unreachable by the shutdown
/// flag and therefore unjoinable.  Past this, the client is considered
/// dead and the connection is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A server's place in a `pka-fabric` deployment, gating which protocol
/// methods it serves.  Every role answers the full read protocol (`query`,
/// `query-batch`, `explain`, `schema`, `snapshot-version`, `snapshot-pull`,
/// `shard-pull`, `stats`, `ping`); the differences are on the write side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricRole {
    /// A single-node server: everything except `snapshot-sync` (it has no
    /// coordinator to follow).
    #[default]
    Standalone,
    /// Merges local ingest plus remote `shard-push` deliveries and
    /// publishes snapshots for replicas; rejects `snapshot-sync`.
    Coordinator,
    /// Tabulates local `ingest` for export via `shard-pull`; rejects
    /// `shard-push` (it is a leaf, not a merge point) and `snapshot-sync`.
    IngestNode,
    /// Serves reads from snapshots received via `snapshot-sync`; rejects
    /// every local write (`ingest`, `refresh`, `shard-push`).
    Replica,
}

impl FabricRole {
    /// Kebab-case spelling used in stats and role-gate error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            FabricRole::Standalone => "standalone",
            FabricRole::Coordinator => "coordinator",
            FabricRole::IngestNode => "ingest-node",
            FabricRole::Replica => "replica",
        }
    }
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind (default `127.0.0.1`).
    pub host: String,
    /// Port to bind; `0` picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub port: u16,
    /// Configuration of the underlying streaming engine.
    pub stream: StreamConfig,
    /// Cap on one request line; longer lines are discarded and answered
    /// with an `overlong-line` error.
    pub max_line_bytes: usize,
    /// The server's fabric role (default [`FabricRole::Standalone`]).
    pub role: FabricRole,
    /// Name this node reports as the `source` of its `shard-pull` exports;
    /// defaults to the bound address.
    pub node_name: Option<String>,
}

impl ServeConfig {
    /// Defaults: loopback, ephemeral port, default engine, 1 MiB lines.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the port (0 = ephemeral).
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Sets the bind host.
    pub fn with_host(mut self, host: impl Into<String>) -> Self {
        self.host = host.into();
        self
    }

    /// Sets the streaming-engine configuration.
    pub fn with_stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Sets the request-line cap.
    pub fn with_max_line_bytes(mut self, max_line_bytes: usize) -> Self {
        self.max_line_bytes = max_line_bytes;
        self
    }

    /// Sets the fabric role.
    pub fn with_role(mut self, role: FabricRole) -> Self {
        self.role = role;
        self
    }

    /// Sets the node name reported as this server's `shard-pull` source.
    pub fn with_node_name(mut self, node_name: impl Into<String>) -> Self {
        self.node_name = Some(node_name.into());
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".to_string(),
            port: 0,
            stream: StreamConfig::default(),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            role: FabricRole::Standalone,
            node_name: None,
        }
    }
}

/// What one refit produced, in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefitSummary {
    /// Version the produced snapshot was published under.
    pub version: u64,
    /// Whether the refit was warm-started from the previous snapshot.
    pub warm_started: bool,
    /// Tuples the refit was performed over.
    pub observations: u64,
    /// Total constraints in the refitted knowledge base.
    pub constraints: usize,
    /// Solver sweeps spent across the refit.
    pub solver_iterations: usize,
    /// Wall-clock time of the refit, in microseconds.
    pub wall_micros: u64,
}

impl RefitSummary {
    fn from_report(report: &RefitReport) -> Self {
        Self {
            version: report.version,
            warm_started: report.warm_started,
            observations: report.observations,
            constraints: report.constraints,
            solver_iterations: report.solver_iterations,
            wall_micros: report.wall_time.as_micros() as u64,
        }
    }
}

/// What one `ingest` request did, in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestSummary {
    /// Tuples accepted into the shards.
    pub accepted: u64,
    /// Tuples pending (not yet covered by a published fit) afterwards.
    pub pending: u64,
    /// Total tuples ingested over the engine's lifetime.
    pub total_ingested: u64,
    /// Whether the refresh policy tripped on this batch.
    pub refit_triggered: bool,
    /// The completed refit, if one ran and succeeded.
    pub refit: Option<RefitSummary>,
    /// The refit failure, if the policy tripped but the refit failed (the
    /// batch itself **is** absorbed either way).
    pub refit_error: Option<String>,
}

/// What one `shard-push` delivery did, in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardPushSummary {
    /// Whether the delivery replaced the source's held shard (false: it
    /// was stale — older or duplicate sequence — and was discarded).
    pub applied: bool,
    /// Tuples the source gained over its previously-held shard.
    pub delta_tuples: u64,
    /// Tuples now held for the source.
    pub source_tuples: u64,
    /// Tuples pending (not yet covered by a published fit) afterwards.
    pub pending: u64,
    /// Total tuples the receiving engine now counts (local + remote).
    pub total_ingested: u64,
    /// Whether the refresh policy tripped on this delivery.
    pub refit_triggered: bool,
    /// The completed refit, if one ran and succeeded.
    pub refit: Option<RefitSummary>,
    /// The refit failure, if the policy tripped but the refit failed (the
    /// delivery itself **is** absorbed either way).
    pub refit_error: Option<String>,
}

/// What one `snapshot-sync` delivery did, in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncSummary {
    /// Whether the delivery was published (false: its version did not
    /// exceed the replica's current one and it was discarded as stale).
    pub applied: bool,
    /// The replica's current snapshot version after the call.
    pub version: u64,
}

impl SyncSummary {
    fn from_report(report: SyncReport) -> Self {
        Self { applied: report.applied, version: report.version }
    }
}

/// Engine-side counters, in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineStats {
    /// Total tuples ingested over the engine's lifetime.
    pub total_ingested: u64,
    /// Tuples ingested since the last published fit.
    pub pending: u64,
    /// Refits performed so far.
    pub refits: u64,
    /// Solver sweeps spent across every refit so far — together with the
    /// cache counters below, the observable cost of the solver hot path.
    pub solver_sweeps: u64,
    /// Number of count shards.
    pub shard_count: usize,
    /// Per-shard tuple counts.
    pub shard_tuples: Vec<u64>,
    /// Solver incidence-cache full hits (see `pka_maxent::IncidenceCache`).
    pub cache_full_hits: u64,
    /// Solver incidence-cache prefix extensions.
    pub cache_extensions: u64,
    /// Solver incidence-cache rebuilds.
    pub cache_rebuilds: u64,
    /// Remote sources currently holding a slot in the shard-placement map.
    pub remote_sources: usize,
    /// Total tuples held from remote sources.
    pub remote_tuples: u64,
    /// Snapshots accepted via `snapshot-sync` (replicas only).
    pub synced_snapshots: u64,
}

/// Connection-side counters, in wire form (the `server` object of a
/// `stats` response).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Request lines answered.
    pub requests: u64,
    /// Malformed lines answered with a structured error.
    pub protocol_errors: u64,
    /// Marginal evaluations answered by a snapshot's lattice table (one
    /// index computation + lookup each).
    pub lattice_hits: u64,
    /// Marginal evaluations that fell back to the dense-joint stride walk
    /// (varset above the lattice's cutoff order).
    pub lattice_misses: u64,
}

/// Commands forwarded from connection threads to the engine thread.
enum EngineCommand {
    Ingest {
        rows: Vec<Vec<usize>>,
        reply: mpsc::Sender<Result<IngestSummary, String>>,
    },
    Refresh {
        reply: mpsc::Sender<Result<RefitSummary, String>>,
    },
    Stats {
        reply: mpsc::Sender<EngineStats>,
    },
    /// A `shard-push` delivery from a remote ingest node.
    AbsorbShard {
        source: String,
        seq: u64,
        shard: CountShard,
        reply: mpsc::Sender<Result<ShardPushSummary, String>>,
    },
    /// A `shard-pull` export of the engine's local counts.
    ExportShard {
        reply: mpsc::Sender<Result<(CountShard, u64), String>>,
    },
    /// A `snapshot-sync` delivery from a coordinator.
    SyncSnapshot {
        meta: SnapshotMeta,
        knowledge_base: Box<KnowledgeBase>,
        reply: mpsc::Sender<Result<SyncSummary, String>>,
    },
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    schema: Arc<Schema>,
    snapshots: SnapshotHandle,
    role: FabricRole,
    /// Name reported as this node's `shard-pull` source.
    node_name: String,
    shutdown: AtomicBool,
    max_line_bytes: usize,
    connections: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    /// Marginal evaluations answered by a snapshot's lattice table
    /// (one lookup each).
    lattice_hits: AtomicU64,
    /// Marginal evaluations that fell back to the dense-joint stride walk
    /// (varset above the lattice's cutoff order).
    lattice_misses: AtomicU64,
}

/// The server constructor namespace.
pub struct Server;

impl Server {
    /// Binds the listener, spawns the engine and accept threads, and
    /// returns a handle.  The server is serving as soon as this returns.
    pub fn start(schema: Arc<Schema>, config: ServeConfig) -> Result<ServerHandle, ServeError> {
        let engine = StreamingEngine::new(Arc::clone(&schema), config.stream.clone())
            .map_err(|e| ServeError::Config { reason: e.to_string() })?;
        let snapshots = engine.handle();
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let (engine_tx, engine_rx) = mpsc::channel::<EngineCommand>();
        let engine_thread = std::thread::Builder::new()
            .name("pka-serve-engine".to_string())
            .spawn(move || run_engine(engine, engine_rx))?;

        let shared = Arc::new(Shared {
            schema,
            snapshots,
            role: config.role,
            node_name: config.node_name.clone().unwrap_or_else(|| addr.to_string()),
            shutdown: AtomicBool::new(false),
            max_line_bytes: config.max_line_bytes.max(64),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            lattice_hits: AtomicU64::new(0),
            lattice_misses: AtomicU64::new(0),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pka-serve-accept".to_string())
                .spawn(move || run_acceptor(listener, shared, engine_tx))?
        };

        Ok(ServerHandle { addr, shared, acceptor: Some(acceptor), engine: Some(engine_thread) })
    }
}

/// A running server.  Dropping the handle shuts the server down (joining
/// every thread); prefer [`ServerHandle::shutdown`] to also recover the
/// engine.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<StreamingEngine>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// A wait-free read handle onto the served snapshots (for in-process
    /// readers and tests).
    pub fn snapshots(&self) -> SnapshotHandle {
        self.shared.snapshots.clone()
    }

    /// True once shutdown has been requested (by this handle or by a
    /// client's `shutdown` request).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the server shuts down (e.g. a client sent `shutdown`),
    /// then joins every thread and returns the engine.
    pub fn wait(mut self) -> Result<StreamingEngine, ServeError> {
        self.join_threads()
    }

    /// Requests shutdown, joins every thread and returns the engine.
    pub fn shutdown(mut self) -> Result<StreamingEngine, ServeError> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join_threads()
    }

    fn join_threads(&mut self) -> Result<StreamingEngine, ServeError> {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor
                .join()
                .map_err(|_| ServeError::Config { reason: "accept thread panicked".into() })?;
        }
        let engine = self
            .engine
            .take()
            .ok_or(ServeError::EngineDown)?
            .join()
            .map_err(|_| ServeError::Config { reason: "engine thread panicked".into() })?;
        Ok(engine)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.join_threads();
    }
}

/// The engine thread: owns the [`StreamingEngine`], drains commands until
/// every sender is gone (accept loop and all connections exited), then
/// returns the engine to [`ServerHandle::shutdown`].
fn run_engine(mut engine: StreamingEngine, rx: mpsc::Receiver<EngineCommand>) -> StreamingEngine {
    while let Ok(command) = rx.recv() {
        match command {
            EngineCommand::Ingest { rows, reply } => {
                let outcome = engine
                    .ingest_batch(&rows)
                    .map(|report| {
                        let (refit, refit_error, refit_triggered) = match report.refit {
                            RefitOutcome::NotTriggered => (None, None, false),
                            RefitOutcome::Completed(ref r) => {
                                (Some(RefitSummary::from_report(r)), None, true)
                            }
                            RefitOutcome::Failed(ref e) => (None, Some(e.to_string()), true),
                        };
                        IngestSummary {
                            accepted: report.accepted,
                            pending: engine.pending(),
                            total_ingested: engine.total_ingested(),
                            refit_triggered,
                            refit,
                            refit_error,
                        }
                    })
                    .map_err(|e| e.to_string());
                let _ = reply.send(outcome);
            }
            EngineCommand::Refresh { reply } => {
                let outcome = engine
                    .refresh()
                    .map(|r| RefitSummary::from_report(&r))
                    .map_err(|e| e.to_string());
                let _ = reply.send(outcome);
            }
            EngineCommand::Stats { reply } => {
                let cache = engine.solver_cache_stats();
                let _ = reply.send(EngineStats {
                    total_ingested: engine.total_ingested(),
                    pending: engine.pending(),
                    refits: engine.refit_count(),
                    solver_sweeps: engine.total_solver_iterations(),
                    shard_count: engine.shard_count(),
                    shard_tuples: engine.shard_tuple_counts(),
                    cache_full_hits: cache.full_hits,
                    cache_extensions: cache.extensions,
                    cache_rebuilds: cache.rebuilds,
                    remote_sources: engine.remote_source_count(),
                    remote_tuples: engine.remote_tuples(),
                    synced_snapshots: engine.synced_snapshots(),
                });
            }
            EngineCommand::AbsorbShard { source, seq, shard, reply } => {
                let outcome = engine
                    .accept_remote_shard(&source, seq, shard)
                    .map(|report| {
                        let (refit, refit_error, refit_triggered) = match report.refit {
                            RefitOutcome::NotTriggered => (None, None, false),
                            RefitOutcome::Completed(ref r) => {
                                (Some(RefitSummary::from_report(r)), None, true)
                            }
                            RefitOutcome::Failed(ref e) => (None, Some(e.to_string()), true),
                        };
                        ShardPushSummary {
                            applied: report.applied,
                            delta_tuples: report.delta_tuples,
                            source_tuples: report.source_tuples,
                            pending: engine.pending(),
                            total_ingested: engine.total_ingested(),
                            refit_triggered,
                            refit,
                            refit_error,
                        }
                    })
                    .map_err(|e| e.to_string());
                let _ = reply.send(outcome);
            }
            EngineCommand::ExportShard { reply } => {
                let outcome = engine
                    .export_local_shard()
                    .map(|shard| {
                        let tuples = shard.tuple_count();
                        (shard, tuples)
                    })
                    .map_err(|e| e.to_string());
                let _ = reply.send(outcome);
            }
            EngineCommand::SyncSnapshot { meta, knowledge_base, reply } => {
                let outcome = engine
                    .apply_synced_snapshot(&meta, *knowledge_base)
                    .map(SyncSummary::from_report)
                    .map_err(|e| e.to_string());
                let _ = reply.send(outcome);
            }
        }
    }
    engine
}

/// The accept loop: spawns one thread per connection, reaps finished ones,
/// and on shutdown joins the rest before exiting (dropping its
/// [`EngineCommand`] sender, which lets the engine thread finish).
fn run_acceptor(
    listener: TcpListener,
    shared: Arc<Shared>,
    engine_tx: mpsc::Sender<EngineCommand>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let engine_tx = engine_tx.clone();
                let worker = std::thread::Builder::new()
                    .name("pka-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, conn_shared, engine_tx));
                match worker {
                    Ok(handle) => workers.push(handle),
                    Err(_) => {
                        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
        // Reap finished connection threads so the vec stays bounded by the
        // number of *live* connections.
        workers.retain(|w| !w.is_finished());
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// What one bounded line read produced.
enum LineOutcome {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The peer closed the connection.
    Eof,
    /// The line exceeded the cap; it has been drained up to its newline.
    Overlong,
    /// Shutdown was requested while waiting.
    Shutdown,
    /// The socket failed.
    Closed,
}

/// Reads one `\n`-terminated line into `buf`, never retaining more than
/// `max` bytes, polling the shutdown flag while the socket is idle.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
    shutdown: &AtomicBool,
) -> LineOutcome {
    loop {
        let remaining = (max + 1).saturating_sub(buf.len());
        if remaining == 0 {
            return drain_overlong(reader, shutdown);
        }
        let mut limited = reader.by_ref().take(remaining as u64);
        match limited.read_until(b'\n', buf) {
            // The limit is > 0, so 0 bytes means the peer closed.
            Ok(0) => return if buf.is_empty() { LineOutcome::Eof } else { LineOutcome::Line },
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    buf.pop();
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return LineOutcome::Line;
                }
                // No newline yet: either the take limit was hit (checked at
                // the top of the loop) or the read was short; keep going.
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    return LineOutcome::Shutdown;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return LineOutcome::Closed,
        }
    }
}

/// Discards the rest of an overlong line (up to its newline) in bounded
/// chunks, so the connection can keep being used afterwards.
fn drain_overlong(reader: &mut BufReader<TcpStream>, shutdown: &AtomicBool) -> LineOutcome {
    let mut scratch: Vec<u8> = Vec::with_capacity(4096);
    loop {
        scratch.clear();
        let mut limited = reader.by_ref().take(4096);
        match limited.read_until(b'\n', &mut scratch) {
            Ok(0) => return LineOutcome::Overlong,
            Ok(_) if scratch.last() == Some(&b'\n') => return LineOutcome::Overlong,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    return LineOutcome::Shutdown;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return LineOutcome::Closed,
        }
    }
}

/// One connection's read-dispatch-respond loop.
fn handle_connection(
    stream: TcpStream,
    shared: Arc<Shared>,
    engine_tx: mpsc::Sender<EngineCommand>,
) {
    // On BSD-derived platforms an accepted socket inherits the listener's
    // nonblocking mode, which would turn the read-timeout poll below into
    // a busy spin — force blocking mode explicitly.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    // Responses accumulate here and are flushed in one write as soon as no
    // further pipelined request is already buffered — one syscall per
    // client batch instead of one per response.
    let mut out: Vec<u8> = Vec::new();

    loop {
        buf.clear();
        match read_line_bounded(&mut reader, &mut buf, shared.max_line_bytes, &shared.shutdown) {
            LineOutcome::Eof | LineOutcome::Closed | LineOutcome::Shutdown => {
                let _ = writer.write_all(&out);
                return;
            }
            LineOutcome::Overlong => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let line = error_line(
                    &Value::Null,
                    ErrorCode::OverlongLine,
                    &format!(
                        "request line exceeded the {}-byte cap and was discarded",
                        shared.max_line_bytes
                    ),
                );
                if queue_response(&mut writer, &mut out, &reader, &line).is_err() {
                    return;
                }
            }
            LineOutcome::Line => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let (line, keep_open) = respond_to(&buf, &shared, &engine_tx);
                if queue_response(&mut writer, &mut out, &reader, &line).is_err() || !keep_open {
                    let _ = writer.write_all(&out);
                    return;
                }
            }
        }
    }
}

/// Queues one response line, flushing unless another complete pipelined
/// request is already sitting in the read buffer (or the queue is large).
fn queue_response(
    writer: &mut TcpStream,
    out: &mut Vec<u8>,
    reader: &BufReader<TcpStream>,
    line: &str,
) -> std::io::Result<()> {
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    let another_pending = reader.buffer().contains(&b'\n');
    if !another_pending || out.len() >= 1 << 16 {
        writer.write_all(out)?;
        out.clear();
    }
    Ok(())
}

/// Produces the response line for one raw request line, plus whether the
/// connection should stay open.
fn respond_to(
    raw: &[u8],
    shared: &Shared,
    engine_tx: &mpsc::Sender<EngineCommand>,
) -> (String, bool) {
    let Ok(text) = std::str::from_utf8(raw) else {
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return (
            error_line(&Value::Null, ErrorCode::InvalidUtf8, "request line is not valid UTF-8"),
            true,
        );
    };
    let request = match parse_request(text) {
        Ok(request) => request,
        Err(e) => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return (error_line(&e.id, e.code, &e.message), true);
        }
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return (
            error_line(&request.id, ErrorCode::ShuttingDown, "server is shutting down"),
            false,
        );
    }
    match dispatch(&request, shared, engine_tx) {
        Ok((result, keep_open)) => {
            if !keep_open {
                // `shutdown` acknowledged: flip the flag *after* building
                // the response so this request is answered normally.
                shared.shutdown.store(true, Ordering::SeqCst);
            }
            (ok_line(&request.id, result), keep_open)
        }
        Err(e) => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            // Dispatch errors always belong to this request, whatever id
            // the deeper helper had available.
            (error_line(&request.id, e.code, &e.message), true)
        }
    }
}

/// Evaluates one request.  Returns the `result` value and whether the
/// connection should stay open afterwards.
fn dispatch(
    request: &Request,
    shared: &Shared,
    engine_tx: &mpsc::Sender<EngineCommand>,
) -> Result<(Value, bool), protocol::RequestError> {
    let open = |v| Ok((v, true));
    match request.method.as_str() {
        "ping" => open(protocol::object([("pong", Value::Bool(true))])),
        "schema" => open(schema_value(&shared.schema)),
        "snapshot-version" => {
            let meta = shared
                .snapshots
                .load()
                .map(|s| Serialize::serialize(&s.meta()))
                .unwrap_or(Value::Null);
            open(protocol::object([("snapshot", meta)]))
        }
        "query" => {
            let snapshot = shared.snapshots.load().ok_or_else(no_snapshot)?;
            let evaluation = evaluate_query(
                &snapshot,
                param(request, "target"),
                param(request, "evidence"),
                shared,
            )?;
            open(single_query_value(&snapshot, evaluation))
        }
        "query-batch" => {
            let snapshot = shared.snapshots.load().ok_or_else(no_snapshot)?;
            let queries = match request.params.get("queries") {
                Some(Value::Array(queries)) => queries,
                Some(other) => {
                    return Err(invalid_params(&format!(
                        "`queries` must be an array of query objects, found {}",
                        other.kind()
                    )))
                }
                None => return Err(invalid_params("missing `queries`")),
            };
            // One snapshot load for the whole batch: every entry is
            // answered from the same immutable state, so a refit landing
            // mid-batch can never produce torn answers within one response.
            let results: Vec<Value> = queries
                .iter()
                .map(|entry| {
                    let (target, evidence) = match entry {
                        Value::Object(_) => (entry.get("target"), entry.get("evidence")),
                        other => {
                            return batch_error_value(
                                ErrorCode::InvalidParams,
                                &format!(
                                    "a batch entry must be a query object, found {}",
                                    other.kind()
                                ),
                            )
                        }
                    };
                    let null = Value::Null;
                    match evaluate_query(
                        &snapshot,
                        target.unwrap_or(&null),
                        evidence.unwrap_or(&null),
                        shared,
                    ) {
                        Ok(evaluation) => batch_entry_value(evaluation),
                        Err(e) => batch_error_value(e.code, &e.message),
                    }
                })
                .collect();
            open(protocol::object([
                ("count", Value::U64(results.len() as u64)),
                ("results", Value::Array(results)),
                ("snapshot_version", Value::U64(snapshot.version())),
                ("observations", Value::U64(snapshot.observations())),
            ]))
        }
        "explain" => {
            let snapshot = shared.snapshots.load().ok_or_else(no_snapshot)?;
            let kb = snapshot.knowledge_base();
            let schema = kb.schema();
            let target = assignment_from_value(schema, param(request, "target"), "target")?;
            let evidence = assignment_from_value(schema, param(request, "evidence"), "evidence")?;
            if target.vars().is_empty() {
                return Err(invalid_params("`target` must assign at least one attribute"));
            }
            let explanation =
                explain_query(kb, &target, &evidence).map_err(|e| protocol::RequestError {
                    code: ErrorCode::QueryError,
                    message: e.to_string(),
                    id: request.id.clone(),
                })?;
            let steps = explanation
                .steps
                .iter()
                .map(|step| {
                    protocol::object([
                        ("evidence", assignment_to_value(schema, &step.evidence_so_far)),
                        ("probability", Value::F64(step.probability)),
                    ])
                })
                .collect();
            let constraints = explanation
                .supporting_constraints
                .iter()
                .map(|(cell, p)| {
                    protocol::object([
                        ("cell", assignment_to_value(schema, cell)),
                        ("probability", Value::F64(*p)),
                    ])
                })
                .collect();
            open(protocol::object([
                ("target", assignment_to_value(schema, &explanation.target)),
                ("evidence", assignment_to_value(schema, &explanation.evidence)),
                ("prior", Value::F64(explanation.prior)),
                ("posterior", Value::F64(explanation.posterior)),
                ("lift", lift_value(explanation.posterior, explanation.prior)),
                ("steps", Value::Array(steps)),
                ("supporting_constraints", Value::Array(constraints)),
                ("rendered", Value::Str(explanation.render(schema))),
                ("snapshot_version", Value::U64(snapshot.version())),
            ]))
        }
        "ingest" => {
            require_role(
                request,
                shared,
                &[FabricRole::Standalone, FabricRole::Coordinator, FabricRole::IngestNode],
            )?;
            let rows = rows_from_value(&request.params)?;
            let (reply_tx, reply_rx) = mpsc::channel();
            send_engine(engine_tx, EngineCommand::Ingest { rows, reply: reply_tx }, request)?;
            let summary =
                recv_engine(reply_rx, request)?.map_err(|message| protocol::RequestError {
                    code: ErrorCode::IngestError,
                    message,
                    id: request.id.clone(),
                })?;
            open(Serialize::serialize(&summary))
        }
        "refresh" => {
            require_role(
                request,
                shared,
                &[FabricRole::Standalone, FabricRole::Coordinator, FabricRole::IngestNode],
            )?;
            let (reply_tx, reply_rx) = mpsc::channel();
            send_engine(engine_tx, EngineCommand::Refresh { reply: reply_tx }, request)?;
            let summary =
                recv_engine(reply_rx, request)?.map_err(|message| protocol::RequestError {
                    code: ErrorCode::IngestError,
                    message,
                    id: request.id.clone(),
                })?;
            open(Serialize::serialize(&summary))
        }
        "stats" => {
            let (reply_tx, reply_rx) = mpsc::channel();
            send_engine(engine_tx, EngineCommand::Stats { reply: reply_tx }, request)?;
            let engine = recv_engine(reply_rx, request)?;
            let snapshot_meta = shared
                .snapshots
                .load()
                .map(|s| Serialize::serialize(&s.meta()))
                .unwrap_or(Value::Null);
            let server = Serialize::serialize(&ServerStats {
                connections: shared.connections.load(Ordering::Relaxed),
                requests: shared.requests.load(Ordering::Relaxed),
                protocol_errors: shared.protocol_errors.load(Ordering::Relaxed),
                lattice_hits: shared.lattice_hits.load(Ordering::Relaxed),
                lattice_misses: shared.lattice_misses.load(Ordering::Relaxed),
            });
            open(protocol::object([
                ("engine", Serialize::serialize(&engine)),
                ("snapshot", snapshot_meta),
                ("server", server),
            ]))
        }
        "shard-push" => {
            require_role(request, shared, &[FabricRole::Standalone, FabricRole::Coordinator])?;
            let source = match request.params.get("source") {
                Some(Value::Str(s)) if !s.is_empty() => s.clone(),
                Some(Value::Str(_)) => {
                    return Err(invalid_params("`source` must be a non-empty string"))
                }
                Some(other) => {
                    return Err(invalid_params(&format!(
                        "`source` must be a string, found {}",
                        other.kind()
                    )))
                }
                None => return Err(invalid_params("missing `source`")),
            };
            let seq = match request.params.get("seq") {
                Some(v) => {
                    v.as_u64().ok_or_else(|| invalid_params("`seq` must be an unsigned integer"))?
                }
                None => return Err(invalid_params("missing `seq`")),
            };
            let shard_value =
                request.params.get("shard").ok_or_else(|| invalid_params("missing `shard`"))?;
            let shard = CountShard::from_value(shard_value)
                .map_err(|e| stream_error_to_request(e, request))?;
            let (reply_tx, reply_rx) = mpsc::channel();
            send_engine(
                engine_tx,
                EngineCommand::AbsorbShard { source, seq, shard, reply: reply_tx },
                request,
            )?;
            let summary =
                recv_engine(reply_rx, request)?.map_err(|message| protocol::RequestError {
                    code: ErrorCode::IngestError,
                    message,
                    id: request.id.clone(),
                })?;
            open(Serialize::serialize(&summary))
        }
        "shard-pull" => {
            let (reply_tx, reply_rx) = mpsc::channel();
            send_engine(engine_tx, EngineCommand::ExportShard { reply: reply_tx }, request)?;
            let (shard, tuples) =
                recv_engine(reply_rx, request)?.map_err(|message| protocol::RequestError {
                    code: ErrorCode::IngestError,
                    message,
                    id: request.id.clone(),
                })?;
            // The local tuple count doubles as the monotone sequence number:
            // local ingestion only ever grows it, so each export is tagged
            // with a sequence the coordinator's placement map can gate on.
            open(protocol::object([
                ("format_version", Value::U64(WIRE_FORMAT_VERSION)),
                ("source", Value::Str(shared.node_name.clone())),
                ("seq", Value::U64(tuples)),
                ("tuples", Value::U64(tuples)),
                ("shard", Serialize::serialize(&shard)),
            ]))
        }
        "snapshot-sync" => {
            require_role(request, shared, &[FabricRole::Replica])?;
            let meta_value =
                request.params.get("meta").ok_or_else(|| invalid_params("missing `meta`"))?;
            let meta = SnapshotMeta::from_value(meta_value)
                .map_err(|e| stream_error_to_request(e, request))?;
            let kb_value = request
                .params
                .get("knowledge_base")
                .ok_or_else(|| invalid_params("missing `knowledge_base`"))?;
            let knowledge_base: KnowledgeBase = Deserialize::deserialize(kb_value)
                .map_err(|e| invalid_params(&format!("`knowledge_base` is malformed: {e}")))?;
            let (reply_tx, reply_rx) = mpsc::channel();
            send_engine(
                engine_tx,
                EngineCommand::SyncSnapshot {
                    meta,
                    knowledge_base: Box::new(knowledge_base),
                    reply: reply_tx,
                },
                request,
            )?;
            let summary =
                recv_engine(reply_rx, request)?.map_err(|message| protocol::RequestError {
                    code: ErrorCode::IngestError,
                    message,
                    id: request.id.clone(),
                })?;
            open(Serialize::serialize(&summary))
        }
        "snapshot-pull" => {
            // Read-only: served straight off the wait-free snapshot slot,
            // no engine round-trip.
            let snapshot = match shared.snapshots.load() {
                Some(snapshot) => protocol::object([
                    ("meta", Serialize::serialize(&snapshot.meta())),
                    ("knowledge_base", Serialize::serialize(snapshot.knowledge_base())),
                ]),
                None => Value::Null,
            };
            open(protocol::object([
                ("format_version", Value::U64(WIRE_FORMAT_VERSION)),
                ("snapshot", snapshot),
            ]))
        }
        "shutdown" => Ok((protocol::object([("shutting_down", Value::Bool(true))]), false)),
        other => Err(protocol::RequestError {
            code: ErrorCode::UnknownMethod,
            message: format!("unknown method `{other}`"),
            id: request.id.clone(),
        }),
    }
}

/// The numbers of one evaluated `P(target | evidence)` question.
struct QueryEvaluation {
    probability: f64,
    joint_probability: f64,
    evidence_probability: f64,
    prior_probability: f64,
    target: Assignment,
    evidence: Assignment,
}

/// Evaluates one `P(target | evidence)` question against a snapshot —
/// shared by `query` and every `query-batch` entry, so the two paths can
/// never drift apart arithmetically.
///
/// Bayes' identity needs up to three marginal probabilities (evidence,
/// target∪evidence, target); each resolves through
/// [`snapshot_probability`] — a lattice-table lookup when the varset is
/// covered, the dense-joint stride walk otherwise.
fn evaluate_query(
    snapshot: &Snapshot,
    target_value: &Value,
    evidence_value: &Value,
    shared: &Shared,
) -> Result<QueryEvaluation, protocol::RequestError> {
    let schema = snapshot.knowledge_base().schema();
    let target = assignment_from_value(schema, target_value, "target")?;
    let evidence = assignment_from_value(schema, evidence_value, "evidence")?;
    if target.vars().is_empty() {
        return Err(invalid_params("`target` must assign at least one attribute"));
    }
    let query_error = |message: String| protocol::RequestError {
        code: ErrorCode::QueryError,
        message,
        id: Value::Null,
    };
    if !target.compatible_with(&evidence) {
        return Err(query_error(
            "target and evidence assign different values to a shared attribute".into(),
        ));
    }
    let evidence_probability = if evidence.vars().is_empty() {
        1.0
    } else {
        snapshot_probability(snapshot, &evidence, shared)
    };
    if evidence_probability <= 0.0 {
        return Err(query_error(format!(
            "evidence {} has probability zero under the model",
            evidence.describe(schema)
        )));
    }
    let merged = target.merge(&evidence).expect("compatibility checked above");
    let joint_probability = snapshot_probability(snapshot, &merged, shared);
    let prior_probability = snapshot_probability(snapshot, &target, shared);
    Ok(QueryEvaluation {
        probability: joint_probability / evidence_probability,
        joint_probability,
        evidence_probability,
        prior_probability,
        target,
        evidence,
    })
}

/// The Bayes-identity fields every query answer carries.
fn evaluation_fields(evaluation: &QueryEvaluation) -> [(&'static str, Value); 5] {
    [
        ("probability", finite_value(evaluation.probability)),
        ("joint_probability", finite_value(evaluation.joint_probability)),
        ("evidence_probability", finite_value(evaluation.evidence_probability)),
        ("prior_probability", finite_value(evaluation.prior_probability)),
        ("lift", lift_value(evaluation.probability, evaluation.prior_probability)),
    ]
}

/// The full `query` result: the evaluation plus the rendered description
/// and the snapshot identity.
fn single_query_value(snapshot: &Snapshot, evaluation: QueryEvaluation) -> Value {
    let schema = snapshot.knowledge_base().schema();
    let [p, jp, ep, pp, lift] = evaluation_fields(&evaluation);
    let description = Query::conditional(evaluation.target, evaluation.evidence).describe(schema);
    protocol::object([
        p,
        jp,
        ep,
        pp,
        lift,
        ("description", Value::Str(description)),
        ("snapshot_version", Value::U64(snapshot.version())),
        ("observations", Value::U64(snapshot.observations())),
    ])
}

/// One lean `query-batch` entry: the five evaluation numbers in
/// **positional** form, `[probability, joint_probability,
/// evidence_probability, prior_probability, lift]`.
///
/// Three deliberate economies versus the single-`query` result object, all
/// load-bearing for batch throughput: the snapshot identity is hoisted to
/// the batch envelope (identical for every entry by construction — one
/// snapshot load serves the whole batch), the description is omitted (it
/// only re-renders the caller's own question), and the field names are
/// dropped from the wire entirely — positional rows cut the per-entry
/// bytes ~4× and spare both sides hundreds of key parses per line.
fn batch_entry_value(evaluation: QueryEvaluation) -> Value {
    let [p, jp, ep, pp, lift] = evaluation_fields(&evaluation);
    Value::Array(vec![p.1, jp.1, ep.1, pp.1, lift.1])
}

/// One marginal probability off a snapshot: the lattice-table lookup when
/// the assignment's varset is covered (`lattice_hits`), the dense-joint
/// stride walk otherwise (`lattice_misses`).
fn snapshot_probability(snapshot: &Snapshot, assignment: &Assignment, shared: &Shared) -> f64 {
    match snapshot.lattice().probability(assignment) {
        Some(p) => {
            shared.lattice_hits.fetch_add(1, Ordering::Relaxed);
            p
        }
        None => {
            shared.lattice_misses.fetch_add(1, Ordering::Relaxed);
            snapshot.joint().probability(assignment)
        }
    }
}

/// One failed `query-batch` entry, in wire form: the same `{code, message}`
/// shape as a top-level error, nested so the batch's other entries still
/// answer.
fn batch_error_value(code: ErrorCode, message: &str) -> Value {
    protocol::object([(
        "error",
        protocol::object([
            ("code", Value::Str(code.as_str().to_string())),
            ("message", Value::Str(message.to_string())),
        ]),
    )])
}

/// Lift in wire form: `posterior / prior`, or `null` when the prior is
/// zero — infinity has no JSON representation, and a typed client must be
/// able to round-trip every field the server emits.
fn lift_value(posterior: f64, prior: f64) -> Value {
    if prior > 0.0 {
        finite_value(posterior / prior)
    } else {
        Value::Null
    }
}

/// A probability in wire form, guarded: a non-finite `f64` (impossible for
/// a well-formed snapshot, but the wire contract must not depend on that)
/// serialises as `null` rather than producing invalid JSON.  The vendored
/// serialiser applies the same mapping as a backstop; this makes the
/// contract explicit at the field level.
fn finite_value(x: f64) -> Value {
    if x.is_finite() {
        Value::F64(x)
    } else {
        Value::Null
    }
}

/// The schema in wire form: attribute names and value names, in order.
fn schema_value(schema: &Schema) -> Value {
    let attributes = schema
        .attributes()
        .iter()
        .map(|attribute| {
            protocol::object([
                ("name", Value::Str(attribute.name().to_string())),
                (
                    "values",
                    Value::Array(
                        attribute.values().iter().map(|v| Value::Str(v.clone())).collect(),
                    ),
                ),
            ])
        })
        .collect();
    protocol::object([("attributes", Value::Array(attributes))])
}

fn param<'a>(request: &'a Request, name: &str) -> &'a Value {
    request.params.get(name).unwrap_or(&Value::Null)
}

fn no_snapshot() -> protocol::RequestError {
    protocol::RequestError {
        code: ErrorCode::NoSnapshot,
        message: "no snapshot published yet; ingest data and refresh first".to_string(),
        id: Value::Null,
    }
}

fn invalid_params(message: &str) -> protocol::RequestError {
    protocol::RequestError {
        code: ErrorCode::InvalidParams,
        message: message.to_string(),
        id: Value::Null,
    }
}

/// Rejects a request whose method the node's fabric role does not serve.
fn require_role(
    request: &Request,
    shared: &Shared,
    allowed: &[FabricRole],
) -> Result<(), protocol::RequestError> {
    if allowed.contains(&shared.role) {
        Ok(())
    } else {
        Err(protocol::RequestError {
            code: ErrorCode::UnsupportedRole,
            message: format!(
                "method `{}` is not served by a {} node",
                request.method,
                shared.role.as_str()
            ),
            id: request.id.clone(),
        })
    }
}

/// Maps a payload-parsing [`StreamError`] onto the wire error taxonomy:
/// format-version mismatches keep their structured code so callers can
/// distinguish an incompatible build from a merely malformed payload.
fn stream_error_to_request(error: StreamError, request: &Request) -> protocol::RequestError {
    let code = match error {
        StreamError::FormatVersion { .. } => ErrorCode::FormatVersion,
        _ => ErrorCode::InvalidParams,
    };
    protocol::RequestError { code, message: error.to_string(), id: request.id.clone() }
}

fn send_engine(
    engine_tx: &mpsc::Sender<EngineCommand>,
    command: EngineCommand,
    request: &Request,
) -> Result<(), protocol::RequestError> {
    engine_tx.send(command).map_err(|_| protocol::RequestError {
        code: ErrorCode::ShuttingDown,
        message: "engine thread is gone".to_string(),
        id: request.id.clone(),
    })
}

fn recv_engine<T>(
    reply_rx: mpsc::Receiver<T>,
    request: &Request,
) -> Result<T, protocol::RequestError> {
    reply_rx.recv().map_err(|_| protocol::RequestError {
        code: ErrorCode::ShuttingDown,
        message: "engine thread dropped the request".to_string(),
        id: request.id.clone(),
    })
}
