//! # pka-serve
//!
//! A concurrent query server over the streaming knowledge base: the
//! deployment shape of the memo's proposal — a probabilistic knowledge base
//! that *answers questions for an expert system* while new observations
//! keep arriving — modelled on maximum-entropy shells like SPIRIT.
//!
//! The server speaks a small **newline-delimited JSON protocol** over TCP
//! (spec in `crates/serve/README.md`): `query` and `explain` are answered
//! by whatever snapshot is current, `ingest` feeds the live
//! [`StreamingEngine`](pka_stream::StreamingEngine), and `refresh`,
//! `stats`, `schema` and `snapshot-version` round out operations.  Three
//! properties shape the implementation:
//!
//! 1. **Wait-free reads.**  Queries load the current snapshot through an
//!    atomic-pointer slot ([`pka_stream::SnapshotHandle`]); no lock, no
//!    retry loop, no contention with refit publishes.
//! 2. **Single-writer ingest.**  The engine lives on its own thread behind
//!    a bounded, two-class admission queue ([`queue`]), so policy-triggered
//!    refits run off the event loops, concurrent ingesters serialise
//!    without locks, and overload sheds writes with structured
//!    `server-overloaded` refusals instead of growing a backlog.
//! 3. **Bounded, recoverable protocol handling.**  Request lines are
//!    length-capped, malformed input (bad JSON, bad UTF-8, unknown
//!    methods, bad params) is answered with a structured error, and the
//!    connection stays usable afterwards.
//! 4. **A bounded-thread reactor front end.**  Connections are served by
//!    a fixed set of `pka-net` event-loop shards (thread count is
//!    `loop_shards + 2` at any connection count), with an open-connection
//!    cap answered by structured `server-overloaded` refusals, idle
//!    reaping, slow-reader backpressure and a graceful shutdown drain —
//!    see `docs/net.md`.
//!
//! ```
//! use pka_contingency::Schema;
//! use pka_serve::{LineClient, ServeConfig, Server};
//!
//! let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
//! let server = Server::start(schema, ServeConfig::new()).unwrap();
//! let mut client = LineClient::connect(server.addr()).unwrap();
//! client.ingest(&[vec![0, 0], vec![1, 1], vec![0, 0], vec![1, 1]]).unwrap();
//! client.refresh().unwrap();
//! let answer = client.query(&[("attr1", "v0")], &[("attr0", "v0")]).unwrap();
//! assert!(answer.probability > 0.0);
//! server.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod error;
pub mod protocol;
pub mod queue;
pub mod server;

pub use admission::{
    AdmissionCounters, BucketSpec, DeadlineLayer, RateLimitConfig, RateLimitLayer,
};
pub use client::{ClientConfig, LineClient, NamedQuery, QueryAnswer, ShardPullAnswer};
pub use error::ServeError;
pub use protocol::{ErrorCode, Request, DEFAULT_MAX_LINE_BYTES};
pub use server::{
    DurabilityConfig, EngineStats, FabricRole, IngestSummary, RefitSummary, ServeConfig, Server,
    ServerHandle, ServerStats, ShardPushSummary, ShutdownTrigger, SourceStat, SyncSummary,
};

// Termination-signal plumbing, re-exported so binaries built on this
// crate (pka-serve itself, pka-fabric) can route SIGTERM to a graceful
// drain without depending on `pka-net` directly.
pub use pka_net::{watch_termination, TerminationWatch};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
