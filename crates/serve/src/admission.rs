//! Admission middleware for the serve front end: token-bucket rate
//! limiting and arrival-time deadline refusal, composed in front of the
//! protocol service with [`pka_net::MiddlewareStack`].
//!
//! Both layers run on the loop-shard threads and refuse with structured
//! protocol errors, so a limited client keeps a usable connection and a
//! machine-readable reason — only the excess traffic is refused, and the
//! engine never sees it.

use crate::protocol::{self, ErrorCode};
use pka_net::{ConnId, Gate, LineMiddleware, TokenBucket};
use serde::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One token bucket's shape: sustained rate plus burst capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSpec {
    /// Sustained admissions per second.
    pub rate_per_sec: f64,
    /// Maximum banked admissions (the bucket starts full).
    pub burst: f64,
}

impl BucketSpec {
    /// Parses the CLI shape `RATE` or `RATE:BURST` (e.g. `500` or
    /// `500:64`).  Burst defaults to the rate, floored at 1.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (rate_text, burst_text) = match text.split_once(':') {
            Some((r, b)) => (r, Some(b)),
            None => (text, None),
        };
        let rate_per_sec: f64 = rate_text
            .trim()
            .parse()
            .map_err(|_| format!("bad rate `{rate_text}`: expected a number"))?;
        if !rate_per_sec.is_finite() || rate_per_sec <= 0.0 {
            return Err(format!("bad rate `{rate_text}`: must be positive"));
        }
        let burst = match burst_text {
            None => rate_per_sec.max(1.0),
            Some(b) => {
                let burst: f64 =
                    b.trim().parse().map_err(|_| format!("bad burst `{b}`: expected a number"))?;
                if !burst.is_finite() || burst < 1.0 {
                    return Err(format!("bad burst `{b}`: must be at least 1"));
                }
                burst
            }
        };
        Ok(Self { rate_per_sec, burst })
    }

    fn bucket(&self) -> TokenBucket {
        TokenBucket::new(self.rate_per_sec, self.burst)
    }
}

/// Rate-limit policy for the front end; `None` specs disable that bucket.
/// Default: everything off — admission control is opt-in via the
/// `--rate-limit-*` flags.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RateLimitConfig {
    /// Per-connection limit on all request lines.
    pub per_conn: Option<BucketSpec>,
    /// Shared limit on read-class methods (`query`, `explain`, pulls…).
    pub read: Option<BucketSpec>,
    /// Shared limit on write-class methods (`ingest`, `shard-push`).
    pub write: Option<BucketSpec>,
}

impl RateLimitConfig {
    /// Whether any bucket is configured.
    pub fn is_active(&self) -> bool {
        self.per_conn.is_some() || self.read.is_some() || self.write.is_some()
    }
}

/// Admission-control counters surfaced in `stats.server`.
#[derive(Debug, Default)]
pub struct AdmissionCounters {
    /// Requests refused by a token bucket.
    pub rate_limited: AtomicU64,
    /// Requests refused because their `deadline_ms` budget expired.
    pub deadline_exceeded: AtomicU64,
}

impl AdmissionCounters {
    pub(crate) fn note_rate_limited(&self) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }
}

/// The wire class a method's rate limit draws from.
fn method_class(method: &str) -> Option<MethodClass> {
    match method {
        "query" | "query-batch" | "explain" | "snapshot-version" | "snapshot-pull"
        | "shard-pull" | "ping" | "schema" => Some(MethodClass::Read),
        "ingest" | "shard-push" | "snapshot-sync" => Some(MethodClass::Write),
        // Control/operator methods (`stats`, `refresh`, `shutdown`, and
        // anything unknown — the parser will refuse those) are never
        // rate limited: an overloaded node must stay inspectable.
        _ => None,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MethodClass {
    Read,
    Write,
}

/// Token-bucket rate limiting: one optional bucket per connection plus
/// shared read/write class buckets.  Refusals are `server-overloaded`
/// lines carrying the bucket's wait hint as `retry_after_ms`.
pub struct RateLimitLayer {
    per_conn: Option<BucketSpec>,
    conns: Mutex<HashMap<ConnId, TokenBucket>>,
    read: Option<Mutex<TokenBucket>>,
    write: Option<Mutex<TokenBucket>>,
    counters: Arc<AdmissionCounters>,
}

impl RateLimitLayer {
    /// Builds the layer from policy + the shared counters.
    pub fn new(config: RateLimitConfig, counters: Arc<AdmissionCounters>) -> Self {
        Self {
            per_conn: config.per_conn,
            conns: Mutex::new(HashMap::new()),
            read: config.read.map(|spec| Mutex::new(spec.bucket())),
            write: config.write.map(|spec| Mutex::new(spec.bucket())),
            counters,
        }
    }

    /// The first bucket that refuses this line, as a wait hint.
    fn check(&self, conn: ConnId, line: &[u8]) -> Option<Duration> {
        if let Some(spec) = &self.per_conn {
            let mut conns = self.conns.lock().expect("rate-limit state poisoned");
            let bucket = conns.entry(conn).or_insert_with(|| spec.bucket());
            if let Err(wait) = bucket.try_acquire() {
                return Some(wait);
            }
        }
        let class_bucket = match protocol::peek_method(line).and_then(method_class) {
            Some(MethodClass::Read) => self.read.as_ref(),
            Some(MethodClass::Write) => self.write.as_ref(),
            None => None,
        };
        if let Some(bucket) = class_bucket {
            if let Err(wait) = bucket.lock().expect("rate-limit state poisoned").try_acquire() {
                return Some(wait);
            }
        }
        None
    }
}

impl LineMiddleware for RateLimitLayer {
    fn gate(&self, conn: ConnId, line: &[u8]) -> Gate {
        let Some(wait) = self.check(conn, line) else {
            return Gate::Pass;
        };
        self.counters.note_rate_limited();
        let retry_after_ms = (wait.as_millis() as u64).max(1);
        Gate::Refuse(protocol::error_line_retry(
            &recover_id(line),
            ErrorCode::Overloaded,
            "rate limit exceeded; excess request refused",
            retry_after_ms,
        ))
    }

    fn on_close(&self, conn: ConnId) {
        self.conns.lock().expect("rate-limit state poisoned").remove(&conn);
    }
}

/// Arrival-time deadline refusal: a request declaring `deadline_ms: 0`
/// arrives already expired and is answered `deadline-exceeded` without
/// touching the parser or the engine.  Positive budgets start counting at
/// arrival and are enforced at the engine queue.
pub struct DeadlineLayer {
    counters: Arc<AdmissionCounters>,
}

impl DeadlineLayer {
    /// Builds the layer over the shared counters.
    pub fn new(counters: Arc<AdmissionCounters>) -> Self {
        Self { counters }
    }
}

impl LineMiddleware for DeadlineLayer {
    fn gate(&self, _conn: ConnId, line: &[u8]) -> Gate {
        if protocol::peek_deadline_ms(line) != Some(0) {
            return Gate::Pass;
        }
        self.counters.note_deadline_exceeded();
        Gate::Refuse(protocol::error_line(
            &recover_id(line),
            ErrorCode::DeadlineExceeded,
            "deadline_ms budget expired on arrival",
        ))
    }
}

/// Best-effort id recovery for a refusal line (full parse is fine here —
/// refusals are off the hot path by definition).
fn recover_id(line: &[u8]) -> Value {
    std::str::from_utf8(line)
        .ok()
        .and_then(|text| protocol::parse_request(text).map(|r| r.id).ok())
        .unwrap_or(Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_spec_parses_rate_and_burst() {
        assert_eq!(
            BucketSpec::parse("500").unwrap(),
            BucketSpec { rate_per_sec: 500.0, burst: 500.0 }
        );
        assert_eq!(
            BucketSpec::parse("250:32").unwrap(),
            BucketSpec { rate_per_sec: 250.0, burst: 32.0 }
        );
        assert_eq!(BucketSpec::parse("0.5").unwrap(), BucketSpec { rate_per_sec: 0.5, burst: 1.0 });
        assert!(BucketSpec::parse("0").is_err());
        assert!(BucketSpec::parse("-3").is_err());
        assert!(BucketSpec::parse("10:0.5").is_err());
        assert!(BucketSpec::parse("fast").is_err());
    }

    fn conn(slot: usize) -> ConnId {
        ConnId { shard: 0, slot, gen: 1 }
    }

    #[test]
    fn per_conn_bucket_refuses_the_excess_with_a_hint() {
        let counters = Arc::new(AdmissionCounters::default());
        let layer = RateLimitLayer::new(
            RateLimitConfig {
                per_conn: Some(BucketSpec { rate_per_sec: 0.001, burst: 2.0 }),
                ..Default::default()
            },
            Arc::clone(&counters),
        );
        let line = b"{\"id\":7,\"method\":\"ping\",\"params\":{}}";
        assert!(matches!(layer.gate(conn(0), line), Gate::Pass));
        assert!(matches!(layer.gate(conn(0), line), Gate::Pass));
        match layer.gate(conn(0), line) {
            Gate::Refuse(response) => {
                assert!(response.contains("server-overloaded"), "{response}");
                assert!(response.contains("retry_after_ms"), "{response}");
                assert!(response.contains("\"id\":7"), "{response}");
            }
            Gate::Pass => panic!("third request should be limited"),
        }
        // Another connection has its own bucket.
        assert!(matches!(layer.gate(conn(1), line), Gate::Pass));
        assert_eq!(counters.rate_limited.load(Ordering::Relaxed), 1);
        // Closing releases the per-connection state.
        layer.on_close(conn(0));
        assert!(layer.conns.lock().unwrap().len() == 1);
    }

    #[test]
    fn write_class_bucket_spares_reads() {
        let counters = Arc::new(AdmissionCounters::default());
        let layer = RateLimitLayer::new(
            RateLimitConfig {
                write: Some(BucketSpec { rate_per_sec: 0.001, burst: 1.0 }),
                ..Default::default()
            },
            counters,
        );
        let write = b"{\"id\":1,\"method\":\"ingest\",\"params\":{\"rows\":[]}}";
        let read = b"{\"id\":2,\"method\":\"query\",\"params\":{}}";
        assert!(matches!(layer.gate(conn(0), write), Gate::Pass));
        assert!(matches!(layer.gate(conn(0), write), Gate::Refuse(_)));
        // Reads and control keep flowing while writes are limited.
        assert!(matches!(layer.gate(conn(0), read), Gate::Pass));
        assert!(matches!(
            layer.gate(conn(0), b"{\"id\":3,\"method\":\"stats\",\"params\":{}}"),
            Gate::Pass
        ));
    }

    #[test]
    fn zero_deadline_is_refused_on_arrival() {
        let counters = Arc::new(AdmissionCounters::default());
        let layer = DeadlineLayer::new(Arc::clone(&counters));
        match layer.gate(conn(0), b"{\"id\":5,\"method\":\"ingest\",\"deadline_ms\":0}") {
            Gate::Refuse(response) => {
                assert!(response.contains("deadline-exceeded"), "{response}");
                assert!(response.contains("\"id\":5"), "{response}");
            }
            Gate::Pass => panic!("expired budget must not reach the service"),
        }
        assert!(matches!(
            layer.gate(conn(0), b"{\"id\":6,\"method\":\"ingest\",\"deadline_ms\":50}"),
            Gate::Pass
        ));
        assert!(matches!(layer.gate(conn(0), b"{\"id\":7,\"method\":\"ping\"}"), Gate::Pass));
        assert_eq!(counters.deadline_exceeded.load(Ordering::Relaxed), 1);
    }
}
