//! Error type of the query server and its line-protocol client.

use std::fmt;
use std::io;

/// Anything that can go wrong starting, running or talking to a server.
#[derive(Debug)]
pub enum ServeError {
    /// A socket-level failure.
    Io(io::Error),
    /// The server answered a request with a structured protocol error.
    Remote {
        /// Machine-readable error code (see the wire-protocol spec).
        code: String,
        /// Human-readable explanation.
        message: String,
        /// Backoff hint in milliseconds, present on `server-overloaded`
        /// shed refusals: retry no sooner than roughly this long.
        retry_after_ms: Option<u64>,
    },
    /// The peer sent something that is not a valid protocol line.
    BadResponse {
        /// What was wrong with it.
        reason: String,
    },
    /// The server configuration is unusable.
    Config {
        /// Human-readable explanation.
        reason: String,
    },
    /// The engine thread is gone (the server is shutting down).
    EngineDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Remote { code, message, retry_after_ms } => {
                write!(f, "server error [{code}]: {message}")?;
                if let Some(ms) = retry_after_ms {
                    write!(f, " (retry after ~{ms}ms)")?;
                }
                Ok(())
            }
            ServeError::BadResponse { reason } => write!(f, "malformed response: {reason}"),
            ServeError::Config { reason } => write!(f, "invalid server configuration: {reason}"),
            ServeError::EngineDown => write!(f, "engine thread is not running"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}
