//! Overload-robustness integration tests: token-bucket admission on a
//! deep pipeline, engine-queue shedding under concurrent writers,
//! deadline budgets, and the reconciliation of every refusal counter.

use pka_contingency::Schema;
use pka_serve::{
    BucketSpec, ErrorCode, LineClient, RateLimitConfig, ServeConfig, ServeError, Server,
};
use pka_stream::{RefreshPolicy, StreamConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::uniform(&[2, 2]).unwrap().into_shared()
}

/// A depth-256 pipeline against a per-connection bucket of burst 32:
/// exactly the excess is refused with `server-overloaded` +
/// `retry_after_ms`, the connection survives the storm, and the server's
/// `rate_limited` counter reconciles with what the client observed.
#[test]
fn pipelined_burst_sheds_exactly_the_excess_and_keeps_the_connection() {
    let config = ServeConfig::new().with_rate_limit(RateLimitConfig {
        // Refill so slow (one token per ~17 minutes) that the pipeline
        // sees exactly `burst` admissions, deterministically.
        per_conn: Some(BucketSpec { rate_per_sec: 0.001, burst: 32.0 }),
        ..Default::default()
    });
    let server = Server::start(schema(), config).unwrap();

    let stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    const DEPTH: usize = 256;
    let mut pipeline = String::new();
    for id in 0..DEPTH {
        pipeline.push_str(&format!("{{\"id\":{id},\"method\":\"ping\",\"params\":{{}}}}\n"));
    }
    writer.write_all(pipeline.as_bytes()).unwrap();

    let mut ok = 0u64;
    let mut refused = 0u64;
    let mut line = String::new();
    for _ in 0..DEPTH {
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "connection died mid-pipeline");
        if line.contains("\"ok\":true") {
            ok += 1;
        } else {
            assert!(line.contains("server-overloaded"), "unexpected refusal: {line}");
            assert!(line.contains("retry_after_ms"), "refusal without a hint: {line}");
            refused += 1;
        }
    }
    assert_eq!(ok, 32, "exactly the bucket's burst must pass");
    assert_eq!(refused, (DEPTH - 32) as u64);

    // The connection is still usable: another request gets an answer
    // (a refusal is an answer — the bucket is empty, not the socket).
    writer.write_all(b"{\"id\":999,\"method\":\"ping\",\"params\":{}}\n").unwrap();
    line.clear();
    assert!(reader.read_line(&mut line).unwrap() > 0);
    assert!(line.contains("\"id\":999"));

    // A second connection has its own bucket and reconciles the counter.
    let mut other = LineClient::connect(server.addr()).unwrap();
    assert!(other.ping().unwrap());
    let stats = other.server_stats().unwrap();
    assert_eq!(stats.rate_limited, refused + 1);
    server.shutdown().unwrap();
}

/// A write-class bucket refuses `ingest` while `query`/`stats` keep
/// answering: degradation is ordered, reads last.
#[test]
fn write_limit_spares_the_read_path() {
    let config = ServeConfig::new().with_rate_limit(RateLimitConfig {
        write: Some(BucketSpec { rate_per_sec: 0.001, burst: 2.0 }),
        ..Default::default()
    });
    let server = Server::start(schema(), config).unwrap();
    let mut client = LineClient::connect(server.addr()).unwrap();

    client.ingest(&[vec![0, 0], vec![1, 1]]).unwrap();
    client.ingest(&[vec![0, 1]]).unwrap();
    match client.ingest(&[vec![1, 0]]) {
        Err(ServeError::Remote { code, retry_after_ms, .. }) => {
            assert_eq!(code, ErrorCode::Overloaded.as_str());
            assert!(retry_after_ms.is_some(), "shed refusals must carry a hint");
        }
        other => panic!("third ingest should be limited, got {other:?}"),
    }
    // Reads and control flow on while writes are limited.
    client.refresh().unwrap();
    let answer = client.query(&[("attr1", "v0")], &[]).unwrap();
    assert!(answer.probability > 0.0);
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.rate_limited, 1);
    server.shutdown().unwrap();
}

/// Concurrent writers against a write cap of 1 and a refit-per-tuple
/// engine: some requests are shed with `server-overloaded`, every
/// shed/accepted command reconciles against the server's counters, the
/// queue gauge respects its cap, and reads never degrade to errors.
#[test]
fn engine_queue_sheds_under_concurrent_writers_and_counters_reconcile() {
    let config = ServeConfig::new()
        .with_engine_queue_cap(1)
        // A refit on every tuple makes the engine slow enough that the
        // queue (cap 1) is reliably full while writers race.
        .with_stream(StreamConfig::new().with_policy(RefreshPolicy::EveryNTuples(1)));
    let server = Server::start(schema(), config).unwrap();
    let addr = server.addr();

    const WRITERS: usize = 8;
    const PER_WRITER: usize = 40;
    let workers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).unwrap();
                let mut accepted = 0u64;
                let mut shed = 0u64;
                for i in 0..PER_WRITER {
                    match client.ingest(&[vec![(w + i) % 2, i % 2]]) {
                        Ok(_) => accepted += 1,
                        Err(ServeError::Remote { code, retry_after_ms, .. })
                            if code == ErrorCode::Overloaded.as_str() =>
                        {
                            assert!(retry_after_ms.is_some());
                            shed += 1;
                        }
                        Err(e) => panic!("unexpected ingest failure: {e}"),
                    }
                }
                (accepted, shed)
            })
        })
        .collect();
    let (mut accepted, mut shed) = (0u64, 0u64);
    for worker in workers {
        let (a, s) = worker.join().unwrap();
        accepted += a;
        shed += s;
    }
    assert_eq!(accepted + shed, (WRITERS * PER_WRITER) as u64);
    assert!(shed > 0, "8 writers racing a cap-1 queue must shed");
    assert!(accepted > 0, "shedding must not starve the queue entirely");

    let mut client = LineClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.total_ingested, accepted, "every accepted row is in the engine");
    let server_stats = client.server_stats().unwrap();
    assert_eq!(server_stats.shed_writes, shed, "client and server disagree on sheds");
    assert_eq!(server_stats.engine_queue_cap, 1);
    assert_eq!(server_stats.engine_queue_depth, 0, "queue must drain once the storm ends");
    // Reads still answer from the last published snapshot.
    let answer = client.query(&[("attr1", "v0")], &[]).unwrap();
    assert!(answer.probability > 0.0);
    server.shutdown().unwrap();
}

/// `deadline_ms: 0` is refused on arrival; a generous budget passes; the
/// `deadline_exceeded` counter books the refusals.
#[test]
fn zero_deadline_refused_on_arrival_and_generous_budget_passes() {
    let server = Server::start(schema(), ServeConfig::new()).unwrap();
    let mut client = LineClient::connect(server.addr()).unwrap();

    let params = pka_serve::protocol::object([(
        "rows",
        serde::Value::Array(vec![serde::Value::Array(vec![
            serde::Value::U64(0),
            serde::Value::U64(0),
        ])]),
    )]);
    match client.call_with_deadline("ingest", &params, 0) {
        Err(ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::DeadlineExceeded.as_str());
        }
        other => panic!("zero budget must be refused, got {other:?}"),
    }
    // A generous budget sails through the queue.
    client.call_with_deadline("ingest", &params, 60_000).unwrap();

    let stats = client.server_stats().unwrap();
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(client.stats().unwrap().total_ingested, 1);
    server.shutdown().unwrap();
}
