//! Slow-peer and overload robustness of the reactor front end, exercised
//! through the real protocol: trickled requests frame correctly, a client
//! that never reads stalls only itself, half-open connections are reaped
//! by the idle timeout, and connects over the cap get a structured
//! `server-overloaded` refusal.

use pka_contingency::Schema;
use pka_serve::{LineClient, ServeConfig, Server, ServerHandle};
use pka_stream::{RefreshPolicy, StreamConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start_server(config: ServeConfig) -> ServerHandle {
    let schema = Schema::uniform(&[3, 2]).unwrap().into_shared();
    let config = config
        .with_stream(StreamConfig::new().with_shard_count(2).with_policy(RefreshPolicy::Manual));
    Server::start(schema, config).unwrap()
}

/// Polls `predicate` until it holds or the deadline passes.
fn wait_until(what: &str, mut predicate: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !predicate() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn byte_at_a_time_request_frames_and_answers() {
    let server = start_server(ServeConfig::new());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let request = b"{\"id\":7,\"method\":\"ping\"}\n";
    for &byte in request.iter() {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut line = String::new();
    BufReader::new(&stream).read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\""), "unexpected response: {line}");
    drop(stream);
    server.shutdown().unwrap();
}

#[test]
fn never_reading_client_stalls_only_itself() {
    // One loop shard, so the hog and its mate share an event loop — the
    // strongest version of the claim.  Idle reaping off so the hog is
    // only ever stalled, never cleaned up behind the test's back.
    let server = start_server(ServeConfig::new().with_loop_shards(1).with_idle_timeout_ms(0));
    let metrics = server.net_metrics();

    // The hog pipelines far more responses than the write high-water mark
    // (256 KiB) will hold and never reads one.
    let mut hog = TcpStream::connect(server.addr()).unwrap();
    let ping = b"{\"id\":1,\"method\":\"ping\"}\n";
    let mut blob = Vec::with_capacity(ping.len() * 20_000);
    for _ in 0..20_000 {
        blob.extend_from_slice(ping);
    }
    hog.write_all(&blob).unwrap();

    // Its shard-mate stays fully interactive throughout.
    let mut mate = LineClient::connect(server.addr()).unwrap();
    wait_until("both connections adopted", || metrics.shard_open().iter().sum::<u64>() == 2);
    for _ in 0..50 {
        assert!(mate.ping().unwrap(), "shard-mate starved by a never-reading client");
    }

    // The hog's socket receive buffer plus the server's write buffer are
    // finite, so the server must have parked it at the high-water mark
    // rather than buffering all 20k responses; the mate's stats request
    // still answers instantly (also via the engine thread).
    let stats = mate.server_stats().unwrap();
    assert_eq!(stats.open_connections, 2);
    assert_eq!(stats.shard_connections, vec![2]);

    // Close the hog before shutdown so the drain has nothing to force.
    drop(hog);
    wait_until("hog reaped after close", || metrics.open() == 1);
    drop(mate);
    server.shutdown().unwrap();
}

#[test]
fn half_open_connection_is_reaped_by_idle_timeout() {
    let server = start_server(ServeConfig::new().with_idle_timeout_ms(200));
    let metrics = server.net_metrics();

    // A peer that connects and then goes silent (e.g. a crashed client
    // behind a NAT that never sends FIN).
    let half_open = TcpStream::connect(server.addr()).unwrap();
    // A live client doing periodic requests must survive the reaping.
    let mut live = LineClient::connect(server.addr()).unwrap();

    wait_until("idle connection reaped", || {
        assert!(live.ping().unwrap(), "active client reaped alongside the idle one");
        metrics.idle_timeouts() >= 1
    });
    let stats = live.server_stats().unwrap();
    assert_eq!(stats.idle_timeouts, 1);
    assert_eq!(stats.dropped_connections, 1, "idle reap must be the only drop");
    assert_eq!(stats.open_connections, 1);

    drop(half_open);
    drop(live);
    server.shutdown().unwrap();
}

#[test]
fn connects_over_the_cap_get_structured_refusals() {
    let server = start_server(ServeConfig::new().with_max_connections(2));
    let metrics = server.net_metrics();

    let mut a = LineClient::connect(server.addr()).unwrap();
    let b = TcpStream::connect(server.addr()).unwrap();
    wait_until("cap filled", || metrics.open() == 2);

    // The third connect is refused with one structured line, then EOF.
    let refused = TcpStream::connect(server.addr()).unwrap();
    let mut response = String::new();
    let mut reader = BufReader::new(&refused);
    reader.read_line(&mut response).unwrap();
    assert!(
        response.contains("\"server-overloaded\""),
        "refusal line was not structured: {response:?}"
    );
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "refused socket produced more than the refusal line");
    assert_eq!(metrics.overload_refusals(), 1);

    // Refusals never count as accepted connections, and capacity frees as
    // soon as a held connection closes.
    let stats = a.server_stats().unwrap();
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.overload_refusals, 1);
    drop(b);
    wait_until("capacity freed", || metrics.open() < 2);
    let mut c = LineClient::connect(server.addr()).unwrap();
    assert!(c.ping().unwrap());

    drop(a);
    drop(c);
    server.shutdown().unwrap();
}
