//! End-to-end acceptance test: boot a server, ingest the memo's survey in
//! 3 rounds from 4 concurrent writer clients while 8 reader clients query
//! continuously, and check that
//!
//! * the final served probabilities match a one-shot acquisition over the
//!   same data to within 1e-9,
//! * no reader ever observes a torn snapshot (every answer is internally
//!   consistent) or a version regression,
//! * the server shuts down without leaking threads (the test would hang
//!   otherwise).

use pka_core::{Acquisition, AcquisitionConfig};
use pka_maxent::ConvergenceCriteria;
use pka_serve::{LineClient, ServeConfig, ServeError, Server};
use pka_stream::{RefreshPolicy, StreamConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

const WRITERS: usize = 4;
const ROUNDS: usize = 3;
const READERS: usize = 8;

/// Solver settings tight enough that "same fixed point" is observable at
/// the 1e-9 level (mirrors `tests/streaming_equivalence.rs`).
fn tight_config() -> AcquisitionConfig {
    AcquisitionConfig::new().with_convergence(
        ConvergenceCriteria::new().with_tolerance(1e-13).with_max_iterations(5000),
    )
}

#[test]
fn concurrent_ingest_and_queries_match_one_shot_acquisition() {
    let full = pka_datagen::smoking::dataset();
    let full_table = pka_datagen::smoking::table();
    let schema = full.shared_schema();

    // Deal the survey round-robin into WRITERS × ROUNDS representative
    // slices, exactly one slice per (writer, round).
    let mut slices: Vec<Vec<Vec<usize>>> = vec![Vec::new(); WRITERS * ROUNDS];
    for (i, sample) in full.iter().enumerate() {
        slices[i % (WRITERS * ROUNDS)].push(sample.values().to_vec());
    }

    let config = ServeConfig::new().with_stream(
        StreamConfig::new()
            .with_shard_count(4)
            .with_policy(RefreshPolicy::Manual)
            .with_acquisition(tight_config()),
    );
    let server = Server::start(Arc::clone(&schema), config).unwrap();
    let addr = server.addr();

    let done = Arc::new(AtomicBool::new(false));

    // 8 reader clients query continuously from the start (tolerating
    // `no-snapshot` until the first refresh lands).
    let readers: Vec<_> = (0..READERS)
        .map(|reader| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).expect("reader connect");
                let mut last_version = 0u64;
                let mut answered = 0u64;
                while !done.load(Ordering::Acquire) {
                    let target = [("cancer", "yes")];
                    let evidence =
                        if reader % 2 == 0 { vec![("smoking", "smoker")] } else { Vec::new() };
                    match client.query(&target, &evidence) {
                        Ok(answer) => {
                            // Never torn: the answer is one snapshot's
                            // arithmetic, so Bayes' identity holds exactly.
                            let reconstructed = answer.probability * answer.evidence_probability;
                            assert!(
                                (reconstructed - answer.joint_probability).abs() < 1e-12,
                                "torn answer: {answer:?}"
                            );
                            assert!(answer.probability.is_finite());
                            // Never stale beyond monotonicity: versions only
                            // move forward for any single reader.
                            assert!(
                                answer.snapshot_version >= last_version,
                                "version regressed {last_version} -> {}",
                                answer.snapshot_version
                            );
                            last_version = answer.snapshot_version;
                            answered += 1;
                        }
                        Err(ServeError::Remote { code, .. }) if code == "no-snapshot" => {}
                        Err(e) => panic!("reader query failed: {e}"),
                    }
                }
                (answered, last_version)
            })
        })
        .collect();

    // 4 writer clients ingest their slice each round; a barrier aligns the
    // rounds and writer 0 triggers the refit, so the stream goes through
    // one cold fit and ≥ 2 warm refits while the readers hammer away.
    let barrier = Arc::new(Barrier::new(WRITERS));
    let writers: Vec<_> = (0..WRITERS)
        .map(|writer| {
            let barrier = Arc::clone(&barrier);
            let slices: Vec<Vec<Vec<usize>>> =
                (0..ROUNDS).map(|round| slices[round * WRITERS + writer].clone()).collect();
            std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).expect("writer connect");
                let mut warm_refits = 0u32;
                for slice in slices {
                    let summary = client.ingest(&slice).expect("ingest");
                    assert_eq!(summary.accepted, slice.len() as u64);
                    barrier.wait();
                    if writer == 0 {
                        let refit = client.refresh().expect("refresh");
                        if refit.warm_started {
                            warm_refits += 1;
                        }
                    }
                    barrier.wait();
                }
                warm_refits
            })
        })
        .collect();

    let warm_refits: u32 = writers.into_iter().map(|w| w.join().expect("writer panicked")).sum();
    assert!(warm_refits >= 2, "expected ≥ 2 warm refits, got {warm_refits}");
    done.store(true, Ordering::Release);
    let mut total_answered = 0;
    for reader in readers {
        let (answered, version) = reader.join().expect("reader panicked");
        total_answered += answered;
        assert!(version <= ROUNDS as u64);
    }
    assert!(total_answered > 0, "no reader ever got an answer");

    // One-shot acquisition over the same data, same configuration.
    let one_shot = Acquisition::new(tight_config()).run(&full_table).unwrap();
    let one_shot_kb = &one_shot.knowledge_base;

    let mut client = LineClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.total_ingested, full_table.total(), "server missed tuples");
    assert_eq!(stats.refits, ROUNDS as u64);
    assert!(
        stats.cache_full_hits > 0,
        "warm refits should have reused the incidence cache: {stats:?}"
    );
    assert!(stats.solver_sweeps > 0, "refits must surface their sweep counts: {stats:?}");

    // Every joint cell, queried over the wire, matches one-shot within
    // 1e-9 (floats survive the wire bit-for-bit, so the tolerance is the
    // modelling one, not a serialisation one).
    for cell in 0..schema.cell_count() {
        let values = schema.cell_values(cell);
        let target: Vec<(&str, &str)> = values
            .iter()
            .enumerate()
            .map(|(attr, &v)| {
                let a = schema.attribute(attr).unwrap();
                (a.name(), a.value_name(v).unwrap())
            })
            .collect();
        let served = client.query(&target, &[]).unwrap();
        let expected = one_shot_kb.joint().probabilities()[cell];
        assert!(
            (served.probability - expected).abs() < 1e-9,
            "cell {values:?}: served {} vs one-shot {expected}",
            served.probability
        );
        assert_eq!(served.snapshot_version, ROUNDS as u64);
        assert_eq!(served.observations, full_table.total());
    }

    // The memo's flagship conditionals agree too.
    for (target, evidence) in [
        (("cancer", "yes"), ("smoking", "smoker")),
        (("cancer", "yes"), ("smoking", "non-smoker")),
        (("family-history", "yes"), ("smoking", "smoker")),
    ] {
        let served = client.query(&[target], &[evidence]).unwrap();
        let expected = one_shot_kb.conditional_by_names(&[target], &[evidence]).unwrap();
        assert!(
            (served.probability - expected).abs() < 1e-9,
            "P({target:?} | {evidence:?}): served {} vs one-shot {expected}",
            served.probability
        );
    }

    // The same questions asked through one `query-batch` line agree with
    // their single-query answers bit-for-bit: both paths evaluate the same
    // snapshot through the same lattice lookups.
    let batch_queries: &[pka_serve::NamedQuery] = &[
        (&[("cancer", "yes")], &[("smoking", "smoker")]),
        (&[("cancer", "yes")], &[("smoking", "non-smoker")]),
        (&[("family-history", "yes")], &[("smoking", "smoker")]),
        (&[("cancer", "yes")], &[]),
    ];
    let answers = client.query_batch(batch_queries).unwrap();
    assert_eq!(answers.len(), batch_queries.len());
    for (&(target, evidence), answer) in batch_queries.iter().zip(&answers) {
        let batched = answer.as_ref().expect("batch entry answered");
        let single = client.query(target, evidence).unwrap();
        assert_eq!(batched.probability, single.probability, "batch and single paths diverged");
        assert_eq!(batched.snapshot_version, single.snapshot_version);
        assert_eq!(batched.observations, single.observations);
    }

    // The read path really is the lattice: every order-≤2 question above
    // was a table lookup, while the full-joint-cell sweep (order 3, above
    // the default cutoff) exercised the stride-walk fallback.
    let server_stats = client.server_stats().unwrap();
    assert!(server_stats.lattice_hits > 0, "no query hit the lattice: {server_stats:?}");
    assert!(
        server_stats.lattice_misses > 0,
        "full-cell queries should have fallen back to the stride walk: {server_stats:?}"
    );

    // An explanation over the served knowledge base is coherent.
    let explanation = client
        .explain(&[("cancer", "yes")], &[("smoking", "smoker"), ("family-history", "yes")])
        .unwrap();
    let posterior = explanation.get("posterior").and_then(|v| v.as_f64()).unwrap();
    let prior = explanation.get("prior").and_then(|v| v.as_f64()).unwrap();
    assert!(posterior > prior, "smoking evidence must raise the cancer belief");

    // Clean shutdown: joins every connection, accept and engine thread —
    // if any leaked, this would hang (the driver's timeout catches it) —
    // and hands back the engine with all the data.
    drop(client);
    let engine = server.shutdown().unwrap();
    assert_eq!(engine.total_ingested(), full_table.total());
}
