//! Wide-schema acceptance: a 20-binary-attribute schema — a 2^20-cell
//! joint, three orders of magnitude past anything the dense path ever
//! served — is acquired, published and served end-to-end without ever
//! allocating the dense joint:
//!
//! * the snapshot publishes with no `JointDistribution` (the server's
//!   `dense_evals` counter stays at zero while `factored_evals` grows —
//!   the structural proof that there is no dense joint to walk),
//! * every served answer matches factored ground truth (a one-shot
//!   acquisition over the same data, evaluated by variable elimination)
//!   to within 1e-9,
//! * lattice hits still serve covered marginals, so the wait-free read
//!   path is intact.

use pka_contingency::Assignment;
use pka_core::{Acquisition, AcquisitionConfig};
use pka_datagen::{sampler::seeded_rng, WideExperiment};
use pka_maxent::{ConvergenceCriteria, FactorGraph};
use pka_serve::{LineClient, ServeConfig, Server};
use pka_stream::{RefreshPolicy, StreamConfig};
use std::sync::Arc;

const ATTRIBUTES: usize = 20;
const SAMPLES: u64 = 300;

/// Acquisition settings for a wide schema: pairwise search only (order-2
/// candidates are already 190 varsets), a small promotion budget so the
/// test stays fast, and a solver tight enough that "same fixed point" is
/// observable at the 1e-9 level.
fn wide_config() -> AcquisitionConfig {
    AcquisitionConfig::new().with_max_order(2).with_max_constraints_per_order(2).with_convergence(
        ConvergenceCriteria::new().with_tolerance(1e-13).with_max_iterations(5000),
    )
}

#[test]
fn twenty_attribute_schema_is_served_without_a_dense_joint() {
    let experiment = WideExperiment::generate(ATTRIBUTES, 2, 5, 6.0, &mut seeded_rng(42));
    let dataset = experiment.sample_dataset(SAMPLES, &mut seeded_rng(43));
    let schema = dataset.shared_schema();
    assert_eq!(schema.cell_count(), 1 << 20, "this test is about the dense ceiling");

    let config = ServeConfig::new().with_stream(
        StreamConfig::new()
            .with_shard_count(2)
            .with_policy(RefreshPolicy::Manual)
            .with_acquisition(wide_config()),
    );
    let server = Server::start(Arc::clone(&schema), config).unwrap();
    let mut client = LineClient::connect(server.addr()).unwrap();

    let rows: Vec<Vec<usize>> = dataset.iter().map(|s| s.values().to_vec()).collect();
    let summary = client.ingest(&rows).unwrap();
    assert_eq!(summary.accepted, SAMPLES);
    let refit = client.refresh().unwrap();
    assert_eq!(refit.observations, SAMPLES);

    // Factored ground truth: the same deterministic acquisition run
    // locally, evaluated by variable elimination (2^20 cells, so the
    // ground truth itself never goes dense either).
    let one_shot = Acquisition::new(wide_config()).run(&dataset.to_table()).unwrap();
    let truth = FactorGraph::from_model(one_shot.knowledge_base.model());

    // Covered questions (order ≤ 2, lattice hits) and uncovered ones
    // (order 3, lattice misses that must route through the factored
    // fallback) across the whole attribute range.
    let name = |attr: usize| format!("attr{attr}");
    for (target_attrs, evidence_attrs) in [
        (vec![0usize], vec![]),
        (vec![7], vec![19]),
        (vec![3, 11], vec![]),
        (vec![0, 1], vec![2]),
        (vec![4, 9], vec![18]),
        (vec![5, 10, 15], vec![]),
        (vec![17, 18, 19], vec![0]),
    ] {
        let target_names: Vec<(String, &str)> =
            target_attrs.iter().map(|&a| (name(a), "v1")).collect();
        let evidence_names: Vec<(String, &str)> =
            evidence_attrs.iter().map(|&a| (name(a), "v0")).collect();
        let target_refs: Vec<(&str, &str)> =
            target_names.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let evidence_refs: Vec<(&str, &str)> =
            evidence_names.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let served = client.query(&target_refs, &evidence_refs).unwrap();

        let target = Assignment::from_pairs(target_attrs.iter().map(|&a| (a, 1)));
        let evidence = Assignment::from_pairs(evidence_attrs.iter().map(|&a| (a, 0)));
        let expected = truth.conditional(&target, &evidence).unwrap();
        assert!(
            (served.probability - expected).abs() < 1e-9,
            "P({target_attrs:?} | {evidence_attrs:?}): served {} vs factored ground truth \
             {expected}",
            served.probability
        );
        assert_eq!(served.observations, SAMPLES);
    }

    // The structural proof: misses happened, every one of them was
    // answered by elimination, and not a single dense-joint walk occurred
    // — because the snapshot never built one.
    let stats = client.server_stats().unwrap();
    assert!(stats.lattice_hits > 0, "order ≤ 2 queries should hit the lattice: {stats:?}");
    assert!(stats.lattice_misses > 0, "order-3 queries should miss the lattice: {stats:?}");
    assert!(stats.factored_evals > 0, "misses must route through elimination: {stats:?}");
    assert_eq!(stats.dense_evals, 0, "no dense joint may exist on a wide snapshot: {stats:?}");
    assert!(
        (1..ATTRIBUTES as u64).contains(&stats.elimination_width_max),
        "induced width should be visible and small on a pairwise model: {stats:?}"
    );

    drop(client);
    let engine = server.shutdown().unwrap();
    assert_eq!(engine.total_ingested(), SAMPLES);
}
