//! Fuzz-ish table of hostile request lines: every one must be answered
//! with a structured JSON error of the right code, and the connection —
//! and the engine behind it — must stay fully usable afterwards.

use pka_contingency::Schema;
use pka_serve::{LineClient, ServeConfig, ServeError, Server};
use pka_stream::{RefreshPolicy, StreamConfig};
use serde::Value;

/// A small line cap so the overlong case is cheap to trigger.
const LINE_CAP: usize = 512;

fn start_server() -> pka_serve::ServerHandle {
    let schema = Schema::uniform(&[3, 2]).unwrap().into_shared();
    let config = ServeConfig::new()
        .with_max_line_bytes(LINE_CAP)
        .with_stream(StreamConfig::new().with_shard_count(2).with_policy(RefreshPolicy::Manual));
    Server::start(schema, config).unwrap()
}

fn error_code(response: &Value) -> String {
    match response.get("error").and_then(|e| e.get("code")) {
        Some(Value::Str(code)) => code.clone(),
        other => panic!("response without error code: {other:?} in {response:?}"),
    }
}

#[test]
fn malformed_lines_get_structured_errors_and_the_connection_survives() {
    let server = start_server();
    let mut client = LineClient::connect(server.addr()).unwrap();

    let cases: &[(&str, &str)] = &[
        // Truncated / broken JSON.
        ("{\"id\":1,\"method\":", "parse-error"),
        ("{", "parse-error"),
        ("", "parse-error"),
        ("}{", "parse-error"),
        ("{\"id\":1} trailing", "parse-error"),
        // Valid JSON, invalid envelope.
        ("42", "invalid-request"),
        ("[1,2,3]", "invalid-request"),
        ("\"just a string\"", "invalid-request"),
        ("null", "invalid-request"),
        ("{}", "invalid-request"),
        ("{\"id\":7}", "invalid-request"),
        ("{\"id\":7,\"method\":12}", "invalid-request"),
        ("{\"method\":{\"nested\":true}}", "invalid-request"),
        // Unknown methods.
        ("{\"id\":1,\"method\":\"frobnicate\"}", "unknown-method"),
        ("{\"id\":1,\"method\":\"QUERY\"}", "unknown-method"),
        // Structurally bad parameters.
        ("{\"id\":1,\"method\":\"query\",\"params\":{\"target\":\"cancer\"}}", "no-snapshot"),
        ("{\"id\":1,\"method\":\"ingest\",\"params\":{}}", "invalid-params"),
        ("{\"id\":1,\"method\":\"ingest\",\"params\":{\"rows\":7}}", "invalid-params"),
        ("{\"id\":1,\"method\":\"ingest\",\"params\":{\"rows\":[7]}}", "invalid-params"),
        ("{\"id\":1,\"method\":\"ingest\",\"params\":{\"rows\":[[0,-2]]}}", "invalid-params"),
        (
            "{\"id\":1,\"method\":\"ingest\",\"params\":{\"rows\":[[\"a\",\"b\"]]}}",
            "invalid-params",
        ),
        // Schema-invalid rows reach the engine and come back as a
        // structured ingest error — with nothing recorded (checked below).
        ("{\"id\":1,\"method\":\"ingest\",\"params\":{\"rows\":[[0,9]]}}", "ingest-error"),
        ("{\"id\":1,\"method\":\"ingest\",\"params\":{\"rows\":[[0]]}}", "ingest-error"),
        // Refreshing an empty stream is an engine error, not a crash.
        ("{\"id\":1,\"method\":\"refresh\"}", "ingest-error"),
    ];

    for (line, expected) in cases {
        let response =
            client.call_raw(line).unwrap_or_else(|e| panic!("no response to {line:?}: {e}"));
        assert_eq!(response.get("ok"), Some(&Value::Bool(false)), "line {line:?}");
        assert_eq!(error_code(&response), *expected, "line {line:?}");
        // The connection answers a well-formed request right after.
        assert!(client.ping().unwrap(), "connection dead after {line:?}");
    }

    // Deeply nested JSON (a recursion bomb under the line cap) must be a
    // parse error, not a stack overflow that kills the process.
    let bomb = "[".repeat(LINE_CAP - 64);
    let response = client.call_raw(&bomb).unwrap();
    assert_eq!(error_code(&response), "parse-error");
    assert!(client.ping().unwrap());

    // Overlong line: discarded with a structured error, connection usable.
    let overlong = format!(
        "{{\"id\":1,\"method\":\"ingest\",\"params\":{{\"pad\":\"{}\"}}}}",
        "x".repeat(4 * LINE_CAP)
    );
    let response = client.call_raw(&overlong).unwrap();
    assert_eq!(error_code(&response), "overlong-line");
    assert!(client.ping().unwrap());

    // Invalid UTF-8: structured error, connection usable.
    let response = client.call_bytes(&[0xff, 0xfe, b'{', 0x80, b'}']).unwrap();
    assert_eq!(error_code(&response), "invalid-utf8");
    assert!(client.ping().unwrap());

    // The engine was never poisoned: nothing from the garbage was
    // recorded, and normal ingest → refresh → query works.
    let stats = client.stats().unwrap();
    assert_eq!(stats.total_ingested, 0, "hostile input must leave no trace in the shards");
    // attr0 has three values but the stream only ever uses 0 and 1 — so
    // attr0=v2 gets a zero-probability first-order constraint, exercised
    // by the zero-prior query below.
    let rows: Vec<Vec<usize>> = (0..60).map(|k| vec![k % 2, (k / 2) % 2]).collect();
    let summary = client.ingest(&rows).unwrap();
    assert_eq!(summary.accepted, 60);
    client.refresh().unwrap();
    let answer = client.query(&[("attr1", "v0")], &[("attr0", "v0")]).unwrap();
    assert!(answer.probability > 0.0 && answer.probability <= 1.0);

    // A target the model assigns zero probability (attr0=v2 was never
    // ingested — the rows above only use values 0 and 1 — so its
    // first-order constraint target is 0) must still round-trip through
    // the typed client: probability 0, lift null (not a JSON `Infinity`).
    let zero_prior = client.query(&[("attr0", "v2")], &[("attr1", "v0")]).unwrap();
    assert_eq!(zero_prior.probability, 0.0);
    assert_eq!(zero_prior.prior_probability, 0.0);
    assert_eq!(zero_prior.lift, None, "zero-prior lift must be null on the wire");

    // Query-evaluation failures are also structured errors, not panics.
    let incompatible = client.query(&[("attr0", "v0")], &[("attr0", "v1")]);
    match incompatible {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, "query-error"),
        other => panic!("incompatible query should be a remote error, got {other:?}"),
    }
    // Unknown attribute names in a query are invalid-params.
    let unknown = client.query(&[("age", "old")], &[]);
    match unknown {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, "invalid-params"),
        other => panic!("unknown attribute should be invalid-params, got {other:?}"),
    }

    server.shutdown().unwrap();
}

#[test]
fn query_batch_malformed_entries_are_per_entry_errors_and_never_invalid_json() {
    let server = start_server();
    let mut client = LineClient::connect(server.addr()).unwrap();

    // Before any snapshot the whole batch is `no-snapshot`.
    let raw = "{\"id\":1,\"method\":\"query-batch\",\"params\":{\"queries\":[]}}";
    let response = client.call_raw(raw).unwrap();
    assert_eq!(error_code(&response), "no-snapshot");

    // Seed a snapshot.  attr0 only ever takes values 0 and 1, so attr0=v2
    // has a zero-probability first-order constraint — the zero-prior case
    // the non-finite guard exists for.
    let rows: Vec<Vec<usize>> = (0..60).map(|k| vec![k % 2, (k / 2) % 2]).collect();
    client.ingest(&rows).unwrap();
    client.refresh().unwrap();

    // Whole-request failures: a malformed `queries` envelope.
    let envelope_cases: &[(&str, &str)] = &[
        ("{\"id\":1,\"method\":\"query-batch\"}", "invalid-params"),
        ("{\"id\":1,\"method\":\"query-batch\",\"params\":{\"queries\":7}}", "invalid-params"),
        (
            "{\"id\":1,\"method\":\"query-batch\",\"params\":{\"queries\":{\"a\":1}}}",
            "invalid-params",
        ),
    ];
    for (line, expected) in envelope_cases {
        let response = client.call_raw(line).unwrap();
        assert_eq!(response.get("ok"), Some(&Value::Bool(false)), "line {line:?}");
        assert_eq!(error_code(&response), *expected, "line {line:?}");
        assert!(client.ping().unwrap(), "connection dead after {line:?}");
    }

    // An empty batch answers with zero results, not an error.
    let response = client.call_raw(raw).unwrap();
    assert_eq!(response.get("ok"), Some(&Value::Bool(true)));
    let results = response.get("result").and_then(|r| r.get("results")).unwrap();
    assert_eq!(results, &Value::Array(vec![]));

    // Per-entry failures answer per entry; the rest of the batch — before
    // *and* after the bad entries — still answers normally.  The last entry
    // is the zero-prior case: its lift must be `null` on the wire, never a
    // bare `Infinity`/`NaN` (which would be invalid JSON and fail the
    // client's parse of the whole response line).
    let raw = concat!(
        "{\"id\":9,\"method\":\"query-batch\",\"params\":{\"queries\":[",
        "{\"target\":{\"attr1\":\"v0\"}},",
        "42,",
        "{\"target\":{\"age\":\"old\"}},",
        "{\"target\":{},\"evidence\":{\"attr1\":\"v0\"}},",
        "{\"target\":{\"attr0\":\"v0\"},\"evidence\":{\"attr0\":\"v1\"}},",
        "{\"target\":{\"attr0\":\"v2\"},\"evidence\":{\"attr1\":\"v0\"}}",
        "]}}"
    );
    let response = client.call_raw(raw).unwrap();
    assert_eq!(response.get("ok"), Some(&Value::Bool(true)), "batch itself succeeds");
    let result = response.get("result").unwrap();
    let Some(Value::Array(results)) = result.get("results") else {
        panic!("batch result without `results`: {result:?}")
    };
    assert_eq!(results.len(), 6);
    assert_eq!(result.get("count"), Some(&Value::U64(6)));
    let entry_code = |entry: &Value| -> String {
        match entry.get("error").and_then(|e| e.get("code")) {
            Some(Value::Str(code)) => code.clone(),
            other => panic!("expected a per-entry error, got {other:?}"),
        }
    };
    // Data entries are positional rows `[p, joint, evidence, prior, lift]`.
    let row = |entry: &Value| -> Vec<Value> {
        match entry {
            Value::Array(fields) => {
                assert_eq!(fields.len(), 5, "row has 5 positional fields");
                fields.clone()
            }
            other => panic!("expected a positional row, got {other:?}"),
        }
    };
    assert!(row(&results[0])[0].as_f64().unwrap() > 0.0, "good entry answered");
    assert_eq!(entry_code(&results[1]), "invalid-params", "non-object entry");
    assert_eq!(entry_code(&results[2]), "invalid-params", "unknown attribute");
    assert_eq!(entry_code(&results[3]), "invalid-params", "empty target");
    assert_eq!(entry_code(&results[4]), "query-error", "contradictory entry");
    let zero_prior = row(&results[5]);
    assert_eq!(zero_prior[0], Value::F64(0.0), "zero-prior probability");
    assert_eq!(zero_prior[3], Value::F64(0.0), "zero prior");
    assert_eq!(zero_prior[4], Value::Null, "zero-prior lift must be null");

    // The typed client view of the same contract.
    let answers = client
        .query_batch(&[
            (&[("attr1", "v0")], &[]),
            (&[("attr0", "v2")], &[("attr1", "v0")]),
            (&[("age", "old")], &[]),
        ])
        .unwrap();
    assert_eq!(answers.len(), 3);
    assert!(answers[0].as_ref().unwrap().probability > 0.0);
    let zero = answers[1].as_ref().unwrap();
    assert_eq!(zero.prior_probability, 0.0);
    assert_eq!(zero.lift, None);
    match &answers[2] {
        Err(pka_serve::ServeError::Remote { code, .. }) => assert_eq!(code, "invalid-params"),
        other => panic!("unknown attribute should be a per-entry error, got {other:?}"),
    }
    // The connection is still fully usable.
    assert!(client.ping().unwrap());

    server.shutdown().unwrap();
}

#[test]
fn shutdown_request_closes_the_connection_and_stops_the_server() {
    let server = start_server();
    let mut client = LineClient::connect(server.addr()).unwrap();
    assert!(client.ping().unwrap());
    client.shutdown().unwrap();
    assert!(server.is_shutting_down());
    // The server stops accepting; joining returns the engine.
    let engine = server.shutdown().unwrap();
    assert_eq!(engine.total_ingested(), 0);
}
