//! The fabric coordinator: merge point and snapshot publisher.
//!
//! A coordinator is a [`pka_serve::Server`] in the
//! [`FabricRole::Coordinator`] role — it accepts `shard-push` deliveries
//! from ingest nodes into the engine's placement map and refits over the
//! merged counts — plus one **pump thread** that (a) optionally *pulls*
//! shards from ingest nodes that cannot push, and (b) offers every newly
//! published snapshot to each configured replica via `snapshot-sync`.
//!
//! The pump is deliberately stateless about replica health: it tracks only
//! the highest version each replica has acknowledged and re-offers the
//! current snapshot whenever a replica is behind.  Because replicas gate on
//! the snapshot version, a re-offer after a lost acknowledgement is a
//! no-op on the replica — at-least-once delivery is safe, so nothing here
//! needs to be exactly-once.

use crate::retry::{FabricClient, RetryPolicy};
use crate::{FabricError, Result};
use pka_contingency::Schema;
use pka_serve::{FabricRole, ServeConfig, Server, ServerHandle};
use pka_stream::SnapshotHandle;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// The underlying server configuration (its role is forced to
    /// [`FabricRole::Coordinator`]).
    pub serve: ServeConfig,
    /// Addresses of replicas to keep in sync via `snapshot-sync`.
    pub replicas: Vec<String>,
    /// Addresses of ingest nodes to poll via `shard-pull` (push-capable
    /// nodes need no entry here).
    pub ingest_nodes: Vec<String>,
    /// How often the pump polls for new shards and behind replicas.
    pub sync_interval: Duration,
    /// Retry policy for every peer conversation.
    pub retry: RetryPolicy,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::new(),
            replicas: Vec::new(),
            ingest_nodes: Vec::new(),
            sync_interval: Duration::from_millis(25),
            retry: RetryPolicy::default(),
        }
    }
}

impl CoordinatorConfig {
    /// Defaults: no peers, 25 ms pump interval.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the underlying server configuration.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Adds a replica address to keep in sync.
    pub fn with_replica(mut self, addr: impl Into<String>) -> Self {
        self.replicas.push(addr.into());
        self
    }

    /// Adds an ingest-node address to poll via `shard-pull`.
    pub fn with_ingest_node(mut self, addr: impl Into<String>) -> Self {
        self.ingest_nodes.push(addr.into());
        self
    }

    /// Sets the pump interval.
    pub fn with_sync_interval(mut self, interval: Duration) -> Self {
        self.sync_interval = interval;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// A running coordinator node.
pub struct Coordinator {
    server: Option<ServerHandle>,
    stop: Arc<AtomicBool>,
    pump: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Coordinator {
    /// Starts the coordinator server and its sync pump.
    pub fn start(schema: Arc<Schema>, config: CoordinatorConfig) -> Result<Self> {
        if config.sync_interval.is_zero() {
            return Err(FabricError::Config {
                reason: "sync_interval must be non-zero".to_string(),
            });
        }
        let serve = config.serve.clone().with_role(FabricRole::Coordinator);
        let server = Server::start(schema, serve)?;
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let pump = spawn_pump(
            server.snapshots(),
            addr,
            config.replicas,
            config.ingest_nodes,
            config.sync_interval,
            config.retry,
            Arc::clone(&stop),
        );
        Ok(Self { server: Some(server), stop, pump: Some(pump), addr })
    }

    /// The coordinator's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A wait-free read handle onto the coordinator's published snapshots.
    pub fn snapshots(&self) -> SnapshotHandle {
        self.server.as_ref().expect("server runs until consumed").snapshots()
    }

    /// A trigger for this node's graceful shutdown, used by the binary's
    /// signal watcher: raising it unblocks [`Coordinator::wait`], which
    /// drains connections and cuts the final checkpoint.
    pub fn shutdown_trigger(&self) -> pka_serve::ShutdownTrigger {
        self.server.as_ref().expect("server runs until consumed").shutdown_trigger()
    }

    /// Blocks until a client asks the server to shut down, then stops the
    /// pump.
    pub fn wait(mut self) -> Result<()> {
        let server = self.server.take().expect("server runs until consumed");
        let result = server.wait().map(drop).map_err(FabricError::from);
        self.halt_pump();
        result
    }

    /// Shuts the node down: stops the pump, then the server.
    pub fn shutdown(mut self) -> Result<()> {
        self.halt_pump();
        let server = self.server.take().expect("server runs until consumed");
        server.shutdown().map(drop).map_err(FabricError::from)
    }

    fn halt_pump(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.halt_pump();
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_pump(
    snapshots: SnapshotHandle,
    self_addr: SocketAddr,
    replicas: Vec<String>,
    ingest_nodes: Vec<String>,
    interval: Duration,
    retry: RetryPolicy,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // One highest-acknowledged version per replica; `None` until the
        // replica has acknowledged anything.
        let mut replicas: Vec<(FabricClient, Option<u64>)> = replicas
            .into_iter()
            .map(|addr| (FabricClient::new(addr, retry.clone()), None))
            .collect();
        // One highest-absorbed sequence per polled ingest node.
        let mut pulls: Vec<(FabricClient, u64)> = ingest_nodes
            .into_iter()
            .map(|addr| (FabricClient::new(addr, retry.clone()), 0))
            .collect();
        // Pulled shards are delivered to the engine through the node's own
        // public `shard-push` endpoint, so the push and pull paths share
        // one absorption code path (and its sequence gating).
        let mut loopback = FabricClient::new(self_addr.to_string(), retry);
        while !stop.load(Ordering::SeqCst) {
            for (peer, last_seq) in pulls.iter_mut() {
                let pulled = peer.call(|c| c.shard_pull());
                if let Ok(answer) = pulled {
                    if answer.seq > *last_seq {
                        let pushed = loopback
                            .call(|c| c.shard_push(&answer.source, answer.seq, &answer.shard));
                        if pushed.is_ok() {
                            *last_seq = answer.seq;
                        }
                    }
                }
            }
            if let Some(snapshot) = snapshots.load() {
                let meta = snapshot.meta();
                for (peer, acked) in replicas.iter_mut() {
                    if acked.is_none_or(|v| v < meta.version) {
                        let synced =
                            peer.call(|c| c.snapshot_sync(&meta, snapshot.knowledge_base()));
                        if let Ok(summary) = synced {
                            // A stale answer still reports the replica's
                            // current version, which is exactly the ack we
                            // need.
                            *acked = Some(acked.unwrap_or(0).max(summary.version));
                        }
                    }
                }
            }
            sleep_until(&stop, interval);
        }
    })
}

/// Sleeps for `interval` in short slices so a stop request is honoured
/// promptly.
pub(crate) fn sleep_until(stop: &AtomicBool, interval: Duration) {
    let slice = Duration::from_millis(10);
    let mut remaining = interval;
    while !remaining.is_zero() && !stop.load(Ordering::SeqCst) {
        let nap = remaining.min(slice);
        std::thread::sleep(nap);
        remaining = remaining.saturating_sub(nap);
    }
}
