//! A fault-injecting TCP proxy for crash-recovery tests.
//!
//! The durability claims in `docs/fabric.md` are only worth what the
//! tests that exercise them are worth, and real networks fail in ways a
//! clean in-process shutdown never rehearses.  [`ChaosProxy`] sits
//! between two fabric nodes as an ordinary TCP relay whose behaviour is
//! scripted through a shared [`FaultPlan`]: tests flip atomics to induce
//! partitions, delivery delays, duplicated or corrupted payloads, and
//! connections severed mid-line — then assert that the fabric's
//! sequence gating, retries, and journals converge to the exact same
//! model a fault-free run produces.
//!
//! Two design points matter for protocol correctness of the *tests*
//! themselves:
//!
//! * **Duplication and corruption sever the connection afterwards.**
//!   `pka-serve` clients correlate responses by request id, so silently
//!   smuggling an extra request into a live connection would desync the
//!   client, testing nothing real.  A duplicate-then-sever instead
//!   models the genuine pathology: a retransmitted request whose first
//!   copy already reached the server (the client gave up on the torn
//!   connection and retried).
//! * **The upstream address is retargetable.**  A "kill -9 and restart"
//!   test restarts the victim on a fresh ephemeral port and re-points
//!   the proxy, while the surviving peers keep dialling the proxy's
//!   stable address — exactly how a load balancer hides a failover.

use serde::Value;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Scripted faults, shared between a test and a running [`ChaosProxy`].
/// All knobs are live: flipping one affects the next delivery (or, for
/// [`FaultPlan::partition`], existing connections too).
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// While true, new connections are refused and established relays
    /// drop everything (both directions): a full network partition.
    partitioned: AtomicBool,
    /// Added latency, per delivered chunk, in milliseconds.
    delay_ms: AtomicU64,
    /// Countdown of upstream-bound payload chunks to corrupt (one byte
    /// flipped), severing the connection afterwards.
    corrupt_next: AtomicUsize,
    /// Countdown of upstream-bound payload chunks to duplicate (the
    /// retransmit-after-timeout pathology), severing afterwards.
    duplicate_next: AtomicUsize,
    /// Countdown of new connections to accept and immediately sever
    /// after the first upstream-bound chunk: a close mid-request.
    sever_next: AtomicUsize,
}

impl FaultPlan {
    /// A plan with every fault disabled: a transparent relay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts or heals a full partition.
    pub fn partition(&self, on: bool) {
        self.partitioned.store(on, Ordering::SeqCst);
    }

    /// True while partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::SeqCst)
    }

    /// Adds `ms` of latency to every delivered chunk (0 disables).
    pub fn delay_ms(&self, ms: u64) {
        self.delay_ms.store(ms, Ordering::SeqCst);
    }

    /// Corrupts the next `n` upstream-bound chunks (then severs).
    pub fn corrupt_next(&self, n: usize) {
        self.corrupt_next.store(n, Ordering::SeqCst);
    }

    /// Duplicates the next `n` upstream-bound chunks (then severs).
    pub fn duplicate_next(&self, n: usize) {
        self.duplicate_next.store(n, Ordering::SeqCst);
    }

    /// Severs the next `n` connections right after their first
    /// upstream-bound chunk — a peer dying mid-request.
    pub fn sever_next(&self, n: usize) {
        self.sever_next.store(n, Ordering::SeqCst);
    }

    fn take(counter: &AtomicUsize) -> bool {
        counter.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1)).is_ok()
    }
}

/// A running fault-injecting relay.  Peers dial [`ChaosProxy::addr`];
/// payloads are forwarded to the (retargetable) upstream, mangled as the
/// [`FaultPlan`] directs.
pub struct ChaosProxy {
    addr: SocketAddr,
    plan: Arc<FaultPlan>,
    upstream: Arc<Mutex<String>>,
    /// Live relay sockets, for partition-time severing; severed and
    /// finished entries are pruned on each accept.
    conns: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port, relaying to
    /// `upstream`.
    pub fn start(upstream: impl Into<String>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        // Polled accept loop: nonblocking so a stop request (or a
        // partition heal) is honoured within ~10 ms.
        listener.set_nonblocking(true)?;
        let plan = Arc::new(FaultPlan::new());
        let upstream = Arc::new(Mutex::new(upstream.into()));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let (plan, upstream, conns, stop) =
                (Arc::clone(&plan), Arc::clone(&upstream), Arc::clone(&conns), Arc::clone(&stop));
            std::thread::Builder::new().name("chaos-accept".to_string()).spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            conns.lock().unwrap().retain(|c| c.peer_addr().is_ok());
                            if plan.is_partitioned() {
                                let _ = client.shutdown(Shutdown::Both);
                                continue;
                            }
                            let target = upstream.lock().unwrap().clone();
                            spawn_relay(client, target, Arc::clone(&plan), Arc::clone(&conns));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })?
        };
        Ok(Self { addr, plan, upstream, conns, stop, acceptor: Some(acceptor) })
    }

    /// The stable address peers dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live fault script.
    pub fn plan(&self) -> Arc<FaultPlan> {
        Arc::clone(&self.plan)
    }

    /// Re-points the proxy at a new upstream (a restarted victim on a
    /// fresh port).  Existing relays keep their old upstream until they
    /// die; [`ChaosProxy::sever_all`] hurries that along.
    pub fn retarget(&self, upstream: impl Into<String>) {
        *self.upstream.lock().unwrap() = upstream.into();
    }

    /// Tears down every live relay connection immediately.
    pub fn sever_all(&self) {
        let mut conns = self.conns.lock().unwrap();
        for conn in conns.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Stops the proxy, severing everything.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.sever_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.halt();
    }
}

/// One accepted connection: dial the upstream and pump both directions
/// on two threads, applying the plan's faults to upstream-bound chunks.
fn spawn_relay(
    client: TcpStream,
    target: String,
    plan: Arc<FaultPlan>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
) {
    std::thread::Builder::new()
        .name("chaos-relay".to_string())
        .spawn(move || {
            let Ok(server) = TcpStream::connect(&target) else {
                let _ = client.shutdown(Shutdown::Both);
                return;
            };
            let sever_after_first = FaultPlan::take(&plan.sever_next);
            {
                let mut held = conns.lock().unwrap();
                if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
                    held.push(c);
                    held.push(s);
                }
            }
            let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
                return;
            };
            let up_plan = Arc::clone(&plan);
            let up = std::thread::Builder::new()
                .name("chaos-up".to_string())
                .spawn(move || pump(client_r, server, &up_plan, true, sever_after_first));
            pump(server_r, client, &plan, false, false);
            if let Ok(up) = up {
                let _ = up.join();
            }
        })
        .ok();
}

/// Copies chunks from `from` to `to` until either side dies, the plan
/// partitions, or an injected fault severs the relay.  Faults that
/// rewrite the byte stream (`corrupt`, `duplicate`, `sever`) only apply
/// on the upstream direction (`mangle = true`).
fn pump(mut from: TcpStream, mut to: TcpStream, plan: &FaultPlan, mangle: bool, sever_first: bool) {
    // A read timeout keeps the pump responsive to partitions that start
    // while the relay sits idle inside `read`.
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if plan.is_partitioned() {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        if plan.is_partitioned() {
            break;
        }
        let delay = plan.delay_ms.load(Ordering::SeqCst);
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        let chunk = &mut buf[..n];
        if mangle && FaultPlan::take(&plan.corrupt_next) {
            // Set the high bit of one byte mid-chunk and sever: a lone
            // continuation byte is never valid UTF-8, so the garbled
            // request can only be *refused* — it cannot sneak through as
            // a different valid request.
            chunk[n / 2] ^= 0x80;
            let _ = to.write_all(chunk);
            break;
        }
        if mangle && FaultPlan::take(&plan.duplicate_next) {
            // Deliver twice, then sever: a retransmit whose original
            // also arrived.  Sequence gating must make the copy a no-op.
            let doubled = [&chunk[..], &chunk[..]].concat();
            let _ = to.write_all(&doubled);
            break;
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        if mangle && sever_first {
            // Connection dies right after its first request reaches the
            // upstream — the client never sees the acknowledgement.
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Shape of an [`ingest_storm`]: a deliberately abusive burst of
/// pipelined `ingest` traffic for overload tests and benches.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Concurrent storm connections (one thread each).
    pub connections: usize,
    /// Requests sent per connection (the storm's total offered load is
    /// `connections × requests_per_conn`).
    pub requests_per_conn: usize,
    /// Rows per `ingest` request.
    pub rows_per_request: usize,
    /// Attribute cardinalities of the target schema; row values are drawn
    /// deterministically below these bounds.
    pub cards: Vec<usize>,
    /// Optional `deadline_ms` budget stamped on every request.
    pub deadline_ms: Option<u64>,
    /// Pipelining window: requests in flight per connection before the
    /// sender reads responses.
    pub window: usize,
    /// Seed decorrelating the row patterns across connections.
    pub seed: u64,
}

impl Default for StormConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            requests_per_conn: 256,
            rows_per_request: 8,
            cards: vec![2, 2],
            deadline_ms: None,
            window: 32,
            seed: 0x5eed,
        }
    }
}

/// What an [`ingest_storm`] observed, classified by the server's answer.
/// `offered == accepted + overloaded + deadline_exceeded + other_errors`
/// unless the connection died mid-storm (`torn_connections` counts the
/// requests that never received any answer).
#[derive(Debug, Default, Clone)]
pub struct StormReport {
    /// Requests written to the wire.
    pub offered: u64,
    /// `ok` answers (the storm's goodput).
    pub accepted: u64,
    /// `server-overloaded` refusals (queue sheds and rate limits).
    pub overloaded: u64,
    /// `deadline-exceeded` refusals.
    pub deadline_exceeded: u64,
    /// Any other error answer.
    pub other_errors: u64,
    /// Requests that got no answer before the connection died.
    pub unanswered: u64,
    /// Wall-clock of the whole storm.
    pub elapsed: Duration,
    /// Highest `engine_queue_depth` gauge observed by the stats sampler
    /// while the storm ran.
    pub max_queue_depth: u64,
}

/// Drives `config.connections × config.requests_per_conn` pipelined
/// `ingest` requests at `addr` as fast as the sockets accept them, while
/// a sampler connection polls `stats` for the queue-depth high-water
/// mark.  Classifies every answer; never panics on refusals — refusals
/// are the behaviour under test.
pub fn ingest_storm(addr: SocketAddr, config: &StormConfig) -> std::io::Result<StormReport> {
    use std::io::BufReader;

    let stop_sampling = Arc::new(AtomicBool::new(false));
    let max_depth = Arc::new(AtomicU64::new(0));
    let sampler = {
        let (stop, max_depth) = (Arc::clone(&stop_sampling), Arc::clone(&max_depth));
        std::thread::Builder::new().name("storm-sampler".to_string()).spawn(move || {
            let Ok(mut client) = pka_serve::LineClient::connect(addr) else { return };
            while !stop.load(Ordering::SeqCst) {
                if let Ok(stats) = client.server_stats() {
                    max_depth.fetch_max(stats.engine_queue_depth, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })?
    };

    let started = std::time::Instant::now();
    let mut senders = Vec::with_capacity(config.connections);
    for conn_index in 0..config.connections {
        let config = config.clone();
        senders.push(std::thread::Builder::new().name("storm-conn".to_string()).spawn(
            move || -> std::io::Result<StormReport> {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true).ok();
                let mut writer = stream.try_clone()?;
                let mut reader = BufReader::new(stream);
                let mut report = StormReport::default();
                // A tiny multiplicative congruential generator: cheap,
                // deterministic per (seed, connection) row patterns.
                let mut state =
                    config.seed.wrapping_add(conn_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        | 1;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut answer = String::new();
                let mut in_flight = 0usize;
                for id in 0..config.requests_per_conn {
                    let rows: Vec<Value> = (0..config.rows_per_request)
                        .map(|_| {
                            Value::Array(
                                config
                                    .cards
                                    .iter()
                                    .map(|&card| Value::U64(next() % card.max(1) as u64))
                                    .collect(),
                            )
                        })
                        .collect();
                    let params = pka_serve::protocol::object([("rows", Value::Array(rows))]);
                    let line = pka_serve::protocol::request_line_with_deadline(
                        id as u64,
                        "ingest",
                        &params,
                        config.deadline_ms,
                    );
                    if writer.write_all(line.as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err()
                    {
                        break;
                    }
                    report.offered += 1;
                    in_flight += 1;
                    if in_flight >= config.window.max(1) {
                        drain_answers(&mut reader, &mut answer, &mut in_flight, &mut report);
                    }
                }
                while in_flight > 0 {
                    let before = in_flight;
                    drain_answers(&mut reader, &mut answer, &mut in_flight, &mut report);
                    if in_flight == before {
                        break;
                    }
                }
                report.unanswered = in_flight as u64;
                Ok(report)
            },
        )?);
    }

    let mut total = StormReport::default();
    for sender in senders {
        let report =
            sender.join().map_err(|_| std::io::Error::other("storm connection panicked"))??;
        total.offered += report.offered;
        total.accepted += report.accepted;
        total.overloaded += report.overloaded;
        total.deadline_exceeded += report.deadline_exceeded;
        total.other_errors += report.other_errors;
        total.unanswered += report.unanswered;
    }
    total.elapsed = started.elapsed();
    stop_sampling.store(true, Ordering::SeqCst);
    let _ = sampler.join();
    total.max_queue_depth = max_depth.load(Ordering::SeqCst);
    Ok(total)
}

/// Reads one response line and books it on the right [`StormReport`]
/// counter.  Substring classification is deliberate: the storm must stay
/// cheap enough to outrun the server it is testing.
fn drain_answers(
    reader: &mut impl std::io::BufRead,
    answer: &mut String,
    in_flight: &mut usize,
    report: &mut StormReport,
) {
    answer.clear();
    match reader.read_line(answer) {
        Ok(0) | Err(_) => {}
        Ok(_) => {
            *in_flight -= 1;
            if answer.contains("\"ok\":true") {
                report.accepted += 1;
            } else if answer.contains("server-overloaded") {
                report.overloaded += 1;
            } else if answer.contains("deadline-exceeded") {
                report.deadline_exceeded += 1;
            } else {
                report.other_errors += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial line-echo upstream for exercising the proxy alone.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                        let mut w = reader.get_ref();
                        if w.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr, line: &str) -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        stream.write_all(line.as_bytes())?;
        let mut reader = BufReader::new(stream);
        let mut answer = String::new();
        reader.read_line(&mut answer)?;
        if answer.is_empty() {
            return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "severed"));
        }
        Ok(answer)
    }

    #[test]
    fn transparent_relay_round_trips() {
        let (upstream, _srv) = echo_server();
        let proxy = ChaosProxy::start(upstream.to_string()).unwrap();
        assert_eq!(roundtrip(proxy.addr(), "hello\n").unwrap(), "hello\n");
        proxy.stop();
    }

    #[test]
    fn partition_blocks_and_heals() {
        let (upstream, _srv) = echo_server();
        let proxy = ChaosProxy::start(upstream.to_string()).unwrap();
        proxy.plan().partition(true);
        proxy.sever_all();
        assert!(roundtrip(proxy.addr(), "lost\n").is_err(), "partition must block delivery");
        proxy.plan().partition(false);
        // Healing is honoured for *new* connections within the accept
        // loop's poll interval.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match roundtrip(proxy.addr(), "back\n") {
                Ok(answer) => {
                    assert_eq!(answer, "back\n");
                    break;
                }
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                Err(e) => panic!("partition never healed: {e}"),
            }
        }
        proxy.stop();
    }

    #[test]
    fn corruption_garbles_and_severs() {
        let (upstream, _srv) = echo_server();
        let proxy = ChaosProxy::start(upstream.to_string()).unwrap();
        proxy.plan().corrupt_next(1);
        // The echo comes back garbled (or the connection dies first —
        // both are acceptable corruption outcomes); afterwards the relay
        // must be transparent again.
        if let Ok(echoed) = roundtrip(proxy.addr(), "pristine\n") {
            assert_ne!(echoed, "pristine\n", "corruption must alter the payload");
        }
        assert_eq!(roundtrip(proxy.addr(), "clean\n").unwrap(), "clean\n");
        proxy.stop();
    }

    #[test]
    fn duplication_delivers_twice_then_severs() {
        // The duplicate-then-sever contract is about what the *upstream*
        // receives — the client is deliberately cut off and may never see
        // a response — so assert on a recording upstream, not the echo.
        let received: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = listener.local_addr().unwrap();
        let log = Arc::clone(&received);
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                        log.lock().unwrap().push(std::mem::take(&mut line));
                    }
                });
            }
        });
        let proxy = ChaosProxy::start(upstream.to_string()).unwrap();
        proxy.plan().duplicate_next(1);
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.write_all(b"twice\n").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let lines = received.lock().unwrap().clone();
            if lines == ["twice\n", "twice\n"] {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "upstream never saw the duplicate: {lines:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // The severed relay must not poison the proxy for later peers:
        // a fresh connection's payload still reaches the upstream once.
        let mut clean = TcpStream::connect(proxy.addr()).unwrap();
        clean.write_all(b"clean\n").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !received.lock().unwrap().iter().any(|l| l == "clean\n") {
            assert!(std::time::Instant::now() < deadline, "relay dead after sever");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(received.lock().unwrap().iter().filter(|l| *l == "clean\n").count(), 1);
        proxy.stop();
    }

    #[test]
    fn retarget_moves_new_connections() {
        let (first, _srv1) = echo_server();
        let proxy = ChaosProxy::start(first.to_string()).unwrap();
        assert_eq!(roundtrip(proxy.addr(), "one\n").unwrap(), "one\n");
        // Kill the illusion of the first upstream and point at a second;
        // a fresh connection must land there (the echo protocol cannot
        // distinguish them, so this asserts liveness after retarget).
        let (second, _srv2) = echo_server();
        proxy.retarget(second.to_string());
        proxy.sever_all();
        assert_eq!(roundtrip(proxy.addr(), "two\n").unwrap(), "two\n");
        proxy.stop();
    }
}
