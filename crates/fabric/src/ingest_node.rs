//! Fabric ingest nodes: local tabulation, cumulative push.
//!
//! An ingest node is a [`pka_serve::Server`] in the
//! [`FabricRole::IngestNode`] role: clients `ingest` rows into it exactly
//! as they would into a standalone server, but the node never refits — its
//! refresh policy is forced to manual, so it stays a cheap tabulator.  A
//! **pusher thread** watches the node's local tuple count and, whenever it
//! has grown, ships the node's *cumulative* [`pka_stream::CountShard`] to
//! the coordinator under the tuple count as the sequence number.
//!
//! Pushing cumulative counts instead of increments is what makes the
//! fabric tolerate every delivery pathology with one rule: the coordinator
//! keeps the highest-sequence shard per source, so a lost push is repaired
//! by the next one, and a duplicated or reordered push is discarded.

use crate::coordinator::sleep_until;
use crate::retry::{FabricClient, RetryPolicy};
use crate::{FabricError, Result};
use pka_contingency::Schema;
use pka_serve::{FabricRole, ServeConfig, Server, ServerHandle};
use pka_stream::RefreshPolicy;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of an [`IngestNode`].
#[derive(Debug, Clone)]
pub struct IngestNodeConfig {
    /// The underlying server configuration (role forced to
    /// [`FabricRole::IngestNode`], refresh policy forced to manual).
    pub serve: ServeConfig,
    /// The coordinator to push shards to.
    pub coordinator: String,
    /// How often the pusher checks for new local tuples.
    pub push_interval: Duration,
    /// Retry policy for pushes.
    pub retry: RetryPolicy,
}

impl IngestNodeConfig {
    /// A node pushing to `coordinator` every 25 ms.
    pub fn new(coordinator: impl Into<String>) -> Self {
        Self {
            serve: ServeConfig::new(),
            coordinator: coordinator.into(),
            push_interval: Duration::from_millis(25),
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the underlying server configuration.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Sets the push interval.
    pub fn with_push_interval(mut self, interval: Duration) -> Self {
        self.push_interval = interval;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// A running ingest node.
pub struct IngestNode {
    server: Option<ServerHandle>,
    stop: Arc<AtomicBool>,
    pusher: Option<JoinHandle<()>>,
    addr: SocketAddr,
    name: String,
}

impl IngestNode {
    /// Starts the node's server and its shard pusher.
    pub fn start(schema: Arc<Schema>, config: IngestNodeConfig) -> Result<Self> {
        if config.push_interval.is_zero() {
            return Err(FabricError::Config {
                reason: "push_interval must be non-zero".to_string(),
            });
        }
        let mut serve = config.serve.clone().with_role(FabricRole::IngestNode);
        // The node only tabulates; fitting happens on the coordinator over
        // the merged counts.
        serve.stream.policy = RefreshPolicy::Manual;
        let server = Server::start(schema, serve)?;
        let addr = server.addr();
        let name = config.serve.node_name.clone().unwrap_or_else(|| addr.to_string());
        let stop = Arc::new(AtomicBool::new(false));
        let pusher = spawn_pusher(
            addr,
            config.coordinator,
            config.push_interval,
            config.retry,
            Arc::clone(&stop),
        );
        Ok(Self { server: Some(server), stop, pusher: Some(pusher), addr, name })
    }

    /// The node's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The source name the node pushes under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A trigger for this node's graceful shutdown, used by the binary's
    /// signal watcher: raising it unblocks [`IngestNode::wait`], which
    /// makes the pusher's final flush attempt and journals local counts.
    pub fn shutdown_trigger(&self) -> pka_serve::ShutdownTrigger {
        self.server.as_ref().expect("server runs until consumed").shutdown_trigger()
    }

    /// Blocks until a client asks the server to shut down, then stops the
    /// pusher (which makes one final flush attempt).
    pub fn wait(mut self) -> Result<()> {
        let server = self.server.take().expect("server runs until consumed");
        let result = server.wait().map(drop).map_err(FabricError::from);
        self.halt_pusher();
        result
    }

    /// Shuts the node down: final shard flush, then the server.
    pub fn shutdown(mut self) -> Result<()> {
        self.halt_pusher();
        let server = self.server.take().expect("server runs until consumed");
        server.shutdown().map(drop).map_err(FabricError::from)
    }

    fn halt_pusher(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(pusher) = self.pusher.take() {
            let _ = pusher.join();
        }
    }
}

impl Drop for IngestNode {
    fn drop(&mut self) {
        self.halt_pusher();
    }
}

fn spawn_pusher(
    self_addr: SocketAddr,
    coordinator: String,
    interval: Duration,
    retry: RetryPolicy,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // The pusher reads the node's shard through its own public
        // `shard-pull` endpoint: the engine thread stays the single
        // writer, and the pusher is just another client.
        let mut loopback = FabricClient::new(self_addr.to_string(), retry.clone());
        let mut coordinator = FabricClient::new(coordinator, retry);
        let mut pushed_seq = 0u64;
        loop {
            let stopping = stop.load(Ordering::SeqCst);
            if let Ok(answer) = loopback.call(|c| c.shard_pull()) {
                if answer.seq > pushed_seq {
                    let pushed = coordinator
                        .call(|c| c.shard_push(&answer.source, answer.seq, &answer.shard));
                    if pushed.is_ok() {
                        pushed_seq = answer.seq;
                    }
                }
            }
            if stopping {
                // The pull above was the final flush; deliberately after
                // the stop check so tuples ingested right before shutdown
                // still reach the coordinator.
                break;
            }
            sleep_until(&stop, interval);
        }
    })
}
