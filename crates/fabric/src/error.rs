//! Fabric-level errors.

use pka_serve::ServeError;
use pka_stream::StreamError;
use std::fmt;

/// Everything that can go wrong assembling or driving a fabric node.
#[derive(Debug)]
pub enum FabricError {
    /// A protocol-level failure talking to a peer.
    Serve(ServeError),
    /// A streaming-engine failure on the local node.
    Stream(StreamError),
    /// The fabric configuration is unusable.
    Config {
        /// What is wrong with it.
        reason: String,
    },
    /// A retried operation ran out of attempts.
    Exhausted {
        /// Attempts made before giving up.
        attempts: usize,
        /// The last attempt's error, rendered.
        last: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Serve(e) => write!(f, "fabric peer error: {e}"),
            FabricError::Stream(e) => write!(f, "fabric engine error: {e}"),
            FabricError::Config { reason } => write!(f, "fabric config error: {reason}"),
            FabricError::Exhausted { attempts, last } => {
                write!(f, "fabric operation failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Serve(e) => Some(e),
            FabricError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for FabricError {
    fn from(e: ServeError) -> Self {
        FabricError::Serve(e)
    }
}

impl From<StreamError> for FabricError {
    fn from(e: StreamError) -> Self {
        FabricError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_cover_all_variants() {
        let cases: Vec<FabricError> = vec![
            FabricError::Serve(ServeError::BadResponse { reason: "x".into() }),
            FabricError::Stream(StreamError::InvalidConfig { reason: "y".into() }),
            FabricError::Config { reason: "z".into() },
            FabricError::Exhausted { attempts: 3, last: "timed out".into() },
        ];
        for case in cases {
            assert!(!case.to_string().is_empty());
        }
    }
}
