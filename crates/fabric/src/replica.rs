//! Fabric read replicas: wait-free reads off synced snapshots.
//!
//! A replica is a [`pka_serve::Server`] in the [`FabricRole::Replica`]
//! role: it serves the full read protocol (`query`, `query-batch`,
//! `explain`, `stats`, …) but rejects `ingest` and `refresh` — its only
//! write path is `snapshot-sync`, through which the coordinator offers
//! published snapshots.  Each offer is version-gated by the engine, so
//! replayed, duplicated or reordered offers are acknowledged no-ops and a
//! replica's observed version sequence is strictly monotone.
//!
//! A replica can also **catch up** by itself: give it the coordinator's
//! address and a puller thread polls `snapshot-version`, fetches any newer
//! snapshot with `snapshot-pull`, and feeds it through the replica's own
//! `snapshot-sync` endpoint — the same validated path coordinator pushes
//! take, so there is exactly one way a snapshot can enter a replica.

use crate::coordinator::sleep_until;
use crate::retry::{FabricClient, RetryPolicy};
use crate::{FabricError, Result};
use pka_contingency::Schema;
use pka_serve::{FabricRole, ServeConfig, Server, ServerHandle};
use pka_stream::SnapshotHandle;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`Replica`].
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The underlying server configuration (role forced to
    /// [`FabricRole::Replica`]).
    pub serve: ServeConfig,
    /// Coordinator to poll for catch-up; `None` makes the replica purely
    /// push-fed.
    pub coordinator: Option<String>,
    /// How often the catch-up puller polls the coordinator.
    pub pull_interval: Duration,
    /// Retry policy for coordinator conversations.
    pub retry: RetryPolicy,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::new(),
            coordinator: None,
            pull_interval: Duration::from_millis(50),
            retry: RetryPolicy::default(),
        }
    }
}

impl ReplicaConfig {
    /// Defaults: push-fed only, 50 ms pull interval once a coordinator is
    /// set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the underlying server configuration.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Sets the coordinator to poll for catch-up.
    pub fn with_coordinator(mut self, addr: impl Into<String>) -> Self {
        self.coordinator = Some(addr.into());
        self
    }

    /// Sets the catch-up poll interval.
    pub fn with_pull_interval(mut self, interval: Duration) -> Self {
        self.pull_interval = interval;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// A running read replica.
pub struct Replica {
    server: Option<ServerHandle>,
    stop: Arc<AtomicBool>,
    puller: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Replica {
    /// Starts the replica server (and its catch-up puller, if a
    /// coordinator address is configured).
    pub fn start(schema: Arc<Schema>, config: ReplicaConfig) -> Result<Self> {
        if config.pull_interval.is_zero() {
            return Err(FabricError::Config {
                reason: "pull_interval must be non-zero".to_string(),
            });
        }
        let serve = config.serve.clone().with_role(FabricRole::Replica);
        let server = Server::start(schema, serve)?;
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let puller = config.coordinator.map(|coordinator| {
            spawn_puller(
                server.snapshots(),
                addr,
                coordinator,
                config.pull_interval,
                config.retry,
                Arc::clone(&stop),
            )
        });
        Ok(Self { server: Some(server), stop, puller, addr })
    }

    /// The replica's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A wait-free read handle onto the replica's current snapshot.
    pub fn snapshots(&self) -> SnapshotHandle {
        self.server.as_ref().expect("server runs until consumed").snapshots()
    }

    /// A trigger for this node's graceful shutdown, used by the binary's
    /// signal watcher: raising it unblocks [`Replica::wait`].
    pub fn shutdown_trigger(&self) -> pka_serve::ShutdownTrigger {
        self.server.as_ref().expect("server runs until consumed").shutdown_trigger()
    }

    /// Blocks until a client asks the server to shut down, then stops the
    /// puller.
    pub fn wait(mut self) -> Result<()> {
        let server = self.server.take().expect("server runs until consumed");
        let result = server.wait().map(drop).map_err(FabricError::from);
        self.halt_puller();
        result
    }

    /// Shuts the replica down: stops the puller, then the server.
    pub fn shutdown(mut self) -> Result<()> {
        self.halt_puller();
        let server = self.server.take().expect("server runs until consumed");
        server.shutdown().map(drop).map_err(FabricError::from)
    }

    fn halt_puller(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(puller) = self.puller.take() {
            let _ = puller.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.halt_puller();
    }
}

fn spawn_puller(
    snapshots: SnapshotHandle,
    self_addr: SocketAddr,
    coordinator: String,
    interval: Duration,
    retry: RetryPolicy,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut coordinator = FabricClient::new(coordinator, retry.clone());
        // Pulled snapshots enter through the replica's own public
        // `snapshot-sync` endpoint so push and pull share the engine's
        // validation and version gate.
        let mut loopback = FabricClient::new(self_addr.to_string(), retry);
        while !stop.load(Ordering::SeqCst) {
            let local = snapshots.version().unwrap_or(0);
            let remote = coordinator.call(|c| c.snapshot_version());
            if let Ok(Some(version)) = remote {
                if version > local {
                    if let Ok(Some((meta, knowledge_base))) =
                        coordinator.call(|c| c.snapshot_pull())
                    {
                        let _ = loopback.call(|c| c.snapshot_sync(&meta, &knowledge_base));
                    }
                }
            }
            sleep_until(&stop, interval);
        }
    })
}
