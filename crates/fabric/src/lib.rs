//! # pka-fabric
//!
//! A multi-node shard fabric over the streaming knowledge base: the
//! deployment shape where tabulation, fitting and serving run on
//! *different machines*, while the acquired model stays bit-for-bit the
//! one a single sequential pass would produce.
//!
//! Three node kinds, all speaking the `pka-serve` line protocol
//! (spec in `crates/serve/README.md`, topology guide in
//! `docs/fabric.md`):
//!
//! * **Ingest nodes** ([`IngestNode`]) tabulate rows into local count
//!   shards and push their *cumulative* counts to the coordinator under a
//!   monotone sequence number (`shard-push`).  Because counts are
//!   cumulative and sequence-gated, lost, duplicated and reordered pushes
//!   all collapse to no-ops or self-repair on the next push.
//! * **The coordinator** ([`Coordinator`]) holds the shard-placement map
//!   (one slot per source), merges remote shards with its local ones via
//!   the same commutative count-monoid fold single-node ingestion uses,
//!   refits over the merged table, and offers each published snapshot to
//!   its replicas (`snapshot-sync`).
//! * **Read replicas** ([`Replica`]) serve the full read protocol off
//!   whatever snapshot they last accepted, through the same wait-free
//!   atomic-pointer slot a standalone server uses.  Offers are
//!   version-gated in the engine, so replica versions are strictly
//!   monotone no matter how deliveries arrive.
//!
//! Exactness is the point: a [`pka_stream::CountShard`] merge is a
//! commutative monoid over cell counts, so *where* tuples were tabulated
//! cannot influence the merged contingency table, and the coordinator's
//! fit equals the one-shot acquisition over the union of all rows (the
//! end-to-end test asserts agreement to 1e-9 through two ingest nodes,
//! three batches and two replicas).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod coordinator;
pub mod error;
pub mod ingest_node;
pub mod replica;
pub mod retry;

pub use chaos::{ingest_storm, ChaosProxy, FaultPlan, StormConfig, StormReport};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use error::FabricError;
pub use ingest_node::{IngestNode, IngestNodeConfig};
pub use replica::{Replica, ReplicaConfig};
pub use retry::{FabricClient, RetryPolicy};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FabricError>;
