//! Bounded retry-with-backoff over a reconnecting [`LineClient`].
//!
//! Every fabric pump talks to its peers through a [`FabricClient`]: a lazy
//! connection plus a [`RetryPolicy`].  Transport failures (connect refusal,
//! socket timeout, a torn response) drop the connection and retry with
//! exponential backoff; **protocol** errors — the peer answered, and said
//! no — are returned immediately, because resending the same request would
//! only earn the same refusal.

use crate::{FabricError, Result};
use pka_serve::{ClientConfig, LineClient, ServeError};
use rand::{Rng, SeedableRng, StdRng};
use std::time::Duration;

/// How hard a [`FabricClient`] tries before reporting
/// [`FabricError::Exhausted`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub attempts: usize,
    /// Backoff before the second attempt; doubles each retry.
    pub initial_backoff: Duration,
    /// Cap on the doubled backoff.
    pub max_backoff: Duration,
    /// Socket deadline (connect, read and write) for each attempt.
    pub deadline: Duration,
    /// Jitter as a percentage of the backoff (0–100): each sleep is scaled
    /// by a random factor in `[1 − jitter/100, 1]`.  Without it, every
    /// pusher that watched the same coordinator die retries in lockstep —
    /// a reconnect thundering herd arriving exactly when the restarted
    /// node is busiest recovering.
    pub jitter_percent: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            deadline: Duration::from_secs(5),
            jitter_percent: 50,
        }
    }
}

impl RetryPolicy {
    /// The default policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A policy for tests and tight in-process loops: fewer, faster tries.
    pub fn fast() -> Self {
        Self {
            attempts: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            deadline: Duration::from_secs(5),
            jitter_percent: 50,
        }
    }

    /// Full (un-jittered) backoff after the `n`-th failed attempt
    /// (0-based) — the deterministic upper envelope of the sleep.
    pub fn backoff(&self, n: u32) -> Duration {
        let doubled = self
            .initial_backoff
            .checked_mul(1u32.checked_shl(n).unwrap_or(u32::MAX))
            .unwrap_or(self.max_backoff);
        doubled.min(self.max_backoff)
    }

    /// The backoff actually slept: [`RetryPolicy::backoff`] scaled by a
    /// random factor in `[1 − jitter/100, 1]`, decorrelating the retry
    /// clocks of peers that failed at the same instant.
    pub fn jittered_backoff(&self, n: u32, rng: &mut impl Rng) -> Duration {
        let full = self.backoff(n);
        let jitter = self.jitter_percent.min(100);
        if jitter == 0 {
            return full;
        }
        let factor = 1.0 - rng.random::<f64>() * f64::from(jitter) / 100.0;
        full.mul_f64(factor)
    }
}

/// A reconnecting, retrying client for one peer address.
pub struct FabricClient {
    addr: String,
    policy: RetryPolicy,
    client: Option<LineClient>,
    /// Per-client jitter source, OS-seeded so clients born at the same
    /// instant (every pusher, after a coordinator outage) still draw
    /// different backoff factors.
    rng: StdRng,
}

impl FabricClient {
    /// A client for `addr`; no connection is made until the first call.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        Self { addr: addr.into(), policy, client: None, rng: StdRng::from_os_rng() }
    }

    /// The peer address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Runs `op` against a connected client, reconnecting and retrying
    /// transport failures up to the policy's attempt budget.
    ///
    /// [`ServeError::Remote`] (the peer answered with a structured error)
    /// is **not** retried — the request reached the peer and was refused,
    /// so the refusal is the answer — with one exception:
    /// `server-overloaded` sheds are explicitly transient, so they are
    /// retried on the same connection, sleeping the server's
    /// `retry_after_ms` hint (jittered, capped at the policy's
    /// `max_backoff`) instead of the exponential schedule.
    pub fn call<T>(
        &mut self,
        mut op: impl FnMut(&mut LineClient) -> std::result::Result<T, ServeError>,
    ) -> Result<T> {
        let attempts = self.policy.attempts.max(1);
        let mut last = String::from("no attempt was made");
        let mut sleep_hint: Option<Duration> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff = match sleep_hint.take() {
                    Some(hint) => {
                        jitter(hint.min(self.policy.max_backoff), &self.policy, &mut self.rng)
                    }
                    None => self.policy.jittered_backoff(attempt as u32 - 1, &mut self.rng),
                };
                std::thread::sleep(backoff);
            }
            let client = match self.client.as_mut() {
                Some(client) => client,
                None => {
                    let config = ClientConfig::with_deadline(self.policy.deadline);
                    match LineClient::connect_with(&self.addr, &config) {
                        Ok(client) => self.client.insert(client),
                        Err(e) => {
                            last = e.to_string();
                            continue;
                        }
                    }
                }
            };
            match op(client) {
                Ok(value) => return Ok(value),
                Err(e @ ServeError::Remote { .. }) => {
                    let ServeError::Remote { code, retry_after_ms, .. } = &e else {
                        unreachable!()
                    };
                    if code != "server-overloaded" {
                        return Err(FabricError::Serve(e));
                    }
                    // A shed, not a verdict: the connection answered and
                    // stays healthy, so keep it and retry after the
                    // server's hint (or the normal schedule without one).
                    sleep_hint = retry_after_ms.map(|ms| Duration::from_millis(ms.max(1)));
                    last = e.to_string();
                }
                Err(e) => {
                    // Transport or framing trouble: the connection's state
                    // is unknown, so drop it and reconnect on the retry.
                    last = e.to_string();
                    self.client = None;
                }
            }
        }
        Err(FabricError::Exhausted { attempts, last })
    }
}

/// Scales a server-supplied backoff hint by the policy's jitter band, so
/// a fleet of pushers shed at the same instant does not return in
/// lockstep at exactly `retry_after_ms`.
fn jitter(full: Duration, policy: &RetryPolicy, rng: &mut impl Rng) -> Duration {
    let jitter = policy.jitter_percent.min(100);
    if jitter == 0 {
        return full;
    }
    full.mul_f64(1.0 - rng.random::<f64>() * f64::from(jitter) / 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            attempts: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(300),
            deadline: Duration::from_secs(1),
            jitter_percent: 50,
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(50));
        assert_eq!(policy.backoff(1), Duration::from_millis(100));
        assert_eq!(policy.backoff(2), Duration::from_millis(200));
        assert_eq!(policy.backoff(3), Duration::from_millis(300));
        assert_eq!(policy.backoff(30), Duration::from_millis(300));
    }

    #[test]
    fn jittered_backoff_stays_in_band_and_decorrelates() {
        let policy = RetryPolicy { jitter_percent: 50, ..RetryPolicy::default() };
        let full = policy.backoff(2);
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<Duration> = (0..64).map(|_| policy.jittered_backoff(2, &mut rng)).collect();
        for d in &draws {
            assert!(*d <= full, "jitter may only shorten the sleep");
            assert!(d.as_secs_f64() >= full.as_secs_f64() * 0.5 - 1e-9);
        }
        assert!(
            draws.iter().collect::<std::collections::BTreeSet<_>>().len() > 1,
            "jitter must actually vary"
        );

        let none = RetryPolicy { jitter_percent: 0, ..RetryPolicy::default() };
        assert_eq!(none.jittered_backoff(2, &mut rng), none.backoff(2));
    }

    #[test]
    fn hint_jitter_stays_under_the_hint() {
        let policy = RetryPolicy { jitter_percent: 50, ..RetryPolicy::default() };
        let mut rng = StdRng::seed_from_u64(11);
        let hint = Duration::from_millis(80);
        for _ in 0..32 {
            let slept = jitter(hint, &policy, &mut rng);
            assert!(slept <= hint);
            assert!(slept.as_secs_f64() >= hint.as_secs_f64() * 0.5 - 1e-9);
        }
        let none = RetryPolicy { jitter_percent: 0, ..RetryPolicy::default() };
        assert_eq!(jitter(hint, &none, &mut rng), hint);
    }

    #[test]
    fn overload_refusals_are_retried_and_other_refusals_are_not() {
        use pka_contingency::Schema;
        use pka_serve::{BucketSpec, RateLimitConfig, ServeConfig, Server};

        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        // One banked request per connection, refilling fast enough for a
        // bounded test: the second immediate request is always refused
        // with a `server-overloaded` hint, and honoring the hint makes a
        // retry succeed.
        let config = ServeConfig::new().with_rate_limit(RateLimitConfig {
            per_conn: Some(BucketSpec { rate_per_sec: 20.0, burst: 1.0 }),
            ..Default::default()
        });
        let server = Server::start(schema, config).unwrap();
        let mut client = FabricClient::new(
            server.addr().to_string(),
            RetryPolicy {
                attempts: 5,
                initial_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(500),
                deadline: Duration::from_secs(5),
                jitter_percent: 0,
            },
        );
        // Drain the banked token, then ask again: the refusal must be
        // retried (sleeping the hint) rather than surfaced, and the same
        // connection must carry the eventual success.
        client.call(|c| c.ping()).unwrap();
        client.call(|c| c.ping()).unwrap();

        // A non-overload refusal is the answer: no retry, no exhaustion.
        match client.call(|c| c.call("no-such-method", pka_serve::protocol::object([])).map(|_| ()))
        {
            Err(FabricError::Serve(ServeError::Remote { code, .. })) => {
                assert_eq!(code, "unknown-method");
            }
            other => panic!("expected an immediate refusal, got {other:?}"),
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn unreachable_peer_exhausts_with_the_last_error() {
        // A port from the dynamic range with nothing listening: connects
        // are refused immediately, so this stays fast.
        let mut client = FabricClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                attempts: 2,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(1),
                deadline: Duration::from_millis(200),
                jitter_percent: 0,
            },
        );
        match client.call(|c| c.ping()) {
            Err(FabricError::Exhausted { attempts: 2, last }) => {
                assert!(!last.is_empty());
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
