//! The `pka-fabric` binary: one executable for every fabric role, plus a
//! `probe` subcommand that drives a running cluster end to end (used by CI
//! as the mini-cluster smoke test).
//!
//! ```text
//! pka-fabric coordinator [--port N] [--host H] SCHEMA [--policy P]
//!                        [--replica ADDR]... [--pull ADDR]...
//!                        [--sync-interval-ms N]
//! pka-fabric ingest-node [--port N] [--host H] SCHEMA --coordinator ADDR
//!                        [--name NAME] [--push-interval-ms N]
//! pka-fabric replica     [--port N] [--host H] SCHEMA [--coordinator ADDR]
//!                        [--pull-interval-ms N]
//! pka-fabric probe --coordinator ADDR [--replica ADDR]...
//!                  [--ingest ADDR]... [--rows N] [--idle-hold N]
//!                  [--storm-requests N] [--shutdown]
//! ```
//!
//! `SCHEMA` is `--schema name=v1|v2;…`, `--cards 3,2,2` or `--survey`, as
//! in `pka-serve`; every node of one fabric must be given the same schema.
//! Every role also accepts the reactor flags `--loop-shards`,
//! `--max-connections` and `--idle-timeout-ms`, and the durability flags
//! `--journal PATH`, `--journal-fsync SPEC`, `--checkpoint PATH` and
//! `--checkpoint-interval-ms N` (as in `pka-serve`); `SIGTERM`/`SIGINT`
//! drain gracefully and cut a final checkpoint.  The overload flags
//! `--engine-queue N` and `--rate-limit-conn/-read/-write RATE[:BURST]`
//! also pass through to every role, and `probe --storm-requests N`
//! hammers the coordinator with pipelined ingest before the functional
//! steps, printing the shed/rate-limit counters for CI to grep.  On
//! startup each node prints `listening on <addr>` to stdout so wrapper
//! scripts can scrape ephemeral ports.
//!
//! The probe ingests deterministic rows (into the `--ingest` nodes if
//! given, else straight into the coordinator), forces a refresh, waits for
//! every `--replica` to reach the coordinator's snapshot version, checks
//! the replicas' answers against the coordinator's, with `--idle-hold N`
//! parks `N` extra idle connections on the coordinator and asserts it
//! reports them all open (the CI fan-in check), and with `--shutdown`
//! stops every node (replicas and ingest nodes first, coordinator last).

use pka_contingency::{Attribute, Schema};
use pka_fabric::{
    Coordinator, CoordinatorConfig, IngestNode, IngestNodeConfig, Replica, ReplicaConfig,
};
use pka_serve::{LineClient, ServeConfig};
use pka_stream::{FsyncPolicy, RefreshPolicy, StreamConfig};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("coordinator") => coordinator(&args[1..]),
        Some("ingest-node") => ingest_node(&args[1..]),
        Some("replica") => replica(&args[1..]),
        Some("probe") => probe(&args[1..]),
        _ => Err("usage: pka-fabric <coordinator|ingest-node|replica|probe> [options]".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pka-fabric: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` options (repeatable) out of an argument list.
struct Options {
    args: Vec<(String, Option<String>)>,
}

impl Options {
    fn parse(args: &[String], flags_with_value: &[&str]) -> Result<Self, String> {
        let mut parsed = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if !arg.starts_with("--") {
                return Err(format!("unexpected argument `{arg}`"));
            }
            if flags_with_value.contains(&arg.as_str()) {
                let value = iter.next().ok_or_else(|| format!("`{arg}` needs a value"))?.clone();
                parsed.push((arg.clone(), Some(value)));
            } else {
                parsed.push((arg.clone(), None));
            }
        }
        Ok(Self { args: parsed })
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.args.iter().rev().find(|(name, _)| name == flag).and_then(|(_, v)| v.as_deref())
    }

    fn values(&self, flag: &str) -> Vec<&str> {
        self.args
            .iter()
            .filter(|(name, _)| name == flag)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    fn present(&self, flag: &str) -> bool {
        self.args.iter().any(|(name, _)| name == flag)
    }
}

fn build_schema(options: &Options) -> Result<Arc<Schema>, String> {
    if options.present("--survey") {
        return Ok(Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .map_err(|e| e.to_string())?
        .into_shared());
    }
    if let Some(spec) = options.value("--schema") {
        let mut attributes = Vec::new();
        for attr_spec in spec.split(';').filter(|s| !s.is_empty()) {
            let (name, values) = attr_spec
                .split_once('=')
                .ok_or_else(|| format!("bad --schema attribute `{attr_spec}` (want name=v1|v2)"))?;
            let values: Vec<&str> = values.split('|').filter(|v| !v.is_empty()).collect();
            if values.len() < 2 {
                return Err(format!("attribute `{name}` needs at least two values"));
            }
            attributes.push(Attribute::new(name, values));
        }
        return Ok(Schema::new(attributes).map_err(|e| e.to_string())?.into_shared());
    }
    if let Some(cards) = options.value("--cards") {
        let cardinalities: Vec<usize> = cards
            .split(',')
            .map(|c| c.trim().parse().map_err(|_| format!("bad --cards entry `{c}`")))
            .collect::<Result<_, _>>()?;
        return Ok(Schema::uniform(&cardinalities).map_err(|e| e.to_string())?.into_shared());
    }
    Err("no schema given: pass --schema, --cards or --survey".to_string())
}

fn base_serve(options: &Options) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::new();
    if let Some(port) = options.value("--port") {
        config = config.with_port(port.parse().map_err(|_| format!("bad --port `{port}`"))?);
    }
    if let Some(host) = options.value("--host") {
        config = config.with_host(host);
    }
    if let Some(name) = options.value("--name") {
        config = config.with_node_name(name);
    }
    if let Some(shards) = options.value("--loop-shards") {
        config = config
            .with_loop_shards(shards.parse().map_err(|_| format!("bad --loop-shards `{shards}`"))?);
    }
    if let Some(cap) = options.value("--max-connections") {
        config = config.with_max_connections(
            cap.parse().map_err(|_| format!("bad --max-connections `{cap}`"))?,
        );
    }
    if let Some(idle) = options.value("--idle-timeout-ms") {
        config = config.with_idle_timeout_ms(
            idle.parse().map_err(|_| format!("bad --idle-timeout-ms `{idle}`"))?,
        );
    }
    if let Some(path) = options.value("--journal") {
        config = config.with_journal(path);
    }
    if let Some(spec) = options.value("--journal-fsync") {
        config = config.with_journal_fsync(FsyncPolicy::parse(spec).map_err(|e| e.to_string())?);
    }
    if let Some(path) = options.value("--checkpoint") {
        config = config.with_checkpoint(path);
    }
    if let Some(ms) = options.value("--checkpoint-interval-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad --checkpoint-interval-ms `{ms}`"))?;
        config = config.with_checkpoint_interval(Duration::from_millis(ms));
    }
    if let Some(cap) = options.value("--engine-queue") {
        config = config
            .with_engine_queue_cap(cap.parse().map_err(|_| format!("bad --engine-queue `{cap}`"))?);
    }
    let mut rate_limit = pka_serve::RateLimitConfig::default();
    if let Some(spec) = options.value("--rate-limit-conn") {
        rate_limit.per_conn = Some(
            pka_serve::BucketSpec::parse(spec)
                .map_err(|e| format!("bad --rate-limit-conn: {e}"))?,
        );
    }
    if let Some(spec) = options.value("--rate-limit-read") {
        rate_limit.read = Some(
            pka_serve::BucketSpec::parse(spec)
                .map_err(|e| format!("bad --rate-limit-read: {e}"))?,
        );
    }
    if let Some(spec) = options.value("--rate-limit-write") {
        rate_limit.write = Some(
            pka_serve::BucketSpec::parse(spec)
                .map_err(|e| format!("bad --rate-limit-write: {e}"))?,
        );
    }
    config = config.with_rate_limit(rate_limit);
    Ok(config)
}

/// Routes `SIGTERM`/`SIGINT` to a node's graceful shutdown: connections
/// drain, pushers flush, and the engine thread cuts a final checkpoint —
/// so an orchestrated restart never loses acknowledged work.
fn drain_on_termination(trigger: pka_serve::ShutdownTrigger) {
    if let Ok(watch) = pka_serve::watch_termination() {
        std::thread::Builder::new()
            .name("pka-fabric-signals".to_string())
            .spawn(move || {
                watch.wait();
                trigger.request();
            })
            .ok();
    }
}

fn parse_policy(policy: &str) -> Result<RefreshPolicy, String> {
    if policy == "manual" {
        return Ok(RefreshPolicy::Manual);
    }
    if let Some(n) = policy.strip_prefix("every=") {
        return Ok(RefreshPolicy::EveryNTuples(
            n.parse().map_err(|_| format!("bad policy `{policy}`"))?,
        ));
    }
    if let Some(f) = policy.strip_prefix("fraction=") {
        return Ok(RefreshPolicy::DirtyFraction(
            f.parse().map_err(|_| format!("bad policy `{policy}`"))?,
        ));
    }
    Err(format!("unknown policy `{policy}` (want manual, every=N or fraction=F)"))
}

fn interval_ms(options: &Options, flag: &str, default_ms: u64) -> Result<Duration, String> {
    match options.value(flag) {
        None => Ok(Duration::from_millis(default_ms)),
        Some(ms) => {
            Ok(Duration::from_millis(ms.parse().map_err(|_| format!("bad {flag} `{ms}`"))?))
        }
    }
}

const NODE_FLAGS: &[&str] = &[
    "--port",
    "--host",
    "--name",
    "--schema",
    "--cards",
    "--policy",
    "--coordinator",
    "--replica",
    "--pull",
    "--sync-interval-ms",
    "--push-interval-ms",
    "--pull-interval-ms",
    "--loop-shards",
    "--max-connections",
    "--idle-timeout-ms",
    "--journal",
    "--journal-fsync",
    "--checkpoint",
    "--checkpoint-interval-ms",
    "--engine-queue",
    "--rate-limit-conn",
    "--rate-limit-read",
    "--rate-limit-write",
];

fn coordinator(args: &[String]) -> Result<(), String> {
    let options = Options::parse(args, NODE_FLAGS)?;
    let schema = build_schema(&options)?;
    let mut serve = base_serve(&options)?;
    if let Some(policy) = options.value("--policy") {
        serve = serve.with_stream(StreamConfig::new().with_policy(parse_policy(policy)?));
    }
    let mut config = CoordinatorConfig::new().with_serve(serve).with_sync_interval(interval_ms(
        &options,
        "--sync-interval-ms",
        25,
    )?);
    for replica in options.values("--replica") {
        config = config.with_replica(replica);
    }
    for node in options.values("--pull") {
        config = config.with_ingest_node(node);
    }
    let node = Coordinator::start(schema, config).map_err(|e| e.to_string())?;
    println!("listening on {}", node.addr());
    std::io::stdout().flush().ok();
    drain_on_termination(node.shutdown_trigger());
    node.wait().map_err(|e| e.to_string())?;
    println!("shut down cleanly");
    Ok(())
}

fn ingest_node(args: &[String]) -> Result<(), String> {
    let options = Options::parse(args, NODE_FLAGS)?;
    let schema = build_schema(&options)?;
    let coordinator =
        options.value("--coordinator").ok_or("ingest-node needs --coordinator HOST:PORT")?;
    let config = IngestNodeConfig::new(coordinator)
        .with_serve(base_serve(&options)?)
        .with_push_interval(interval_ms(&options, "--push-interval-ms", 25)?);
    let node = IngestNode::start(schema, config).map_err(|e| e.to_string())?;
    println!("listening on {}", node.addr());
    std::io::stdout().flush().ok();
    drain_on_termination(node.shutdown_trigger());
    node.wait().map_err(|e| e.to_string())?;
    println!("shut down cleanly");
    Ok(())
}

fn replica(args: &[String]) -> Result<(), String> {
    let options = Options::parse(args, NODE_FLAGS)?;
    let schema = build_schema(&options)?;
    let mut config = ReplicaConfig::new()
        .with_serve(base_serve(&options)?)
        .with_pull_interval(interval_ms(&options, "--pull-interval-ms", 50)?);
    if let Some(coordinator) = options.value("--coordinator") {
        config = config.with_coordinator(coordinator);
    }
    let node = Replica::start(schema, config).map_err(|e| e.to_string())?;
    println!("listening on {}", node.addr());
    std::io::stdout().flush().ok();
    drain_on_termination(node.shutdown_trigger());
    node.wait().map_err(|e| e.to_string())?;
    println!("shut down cleanly");
    Ok(())
}

/// Drives a running fabric end to end and fails loudly on any surprise.
fn probe(args: &[String]) -> Result<(), String> {
    let options = Options::parse(
        args,
        &[
            "--coordinator",
            "--replica",
            "--ingest",
            "--rows",
            "--timeout-s",
            "--idle-hold",
            "--storm-requests",
        ],
    )?;
    let coordinator_addr =
        options.value("--coordinator").ok_or("probe needs --coordinator HOST:PORT")?;
    let replica_addrs = options.values("--replica");
    let ingest_addrs = options.values("--ingest");
    let row_count: usize =
        options.value("--rows").unwrap_or("240").parse().map_err(|_| "bad --rows".to_string())?;
    let timeout: u64 =
        options.value("--timeout-s").unwrap_or("30").parse().map_err(|_| "bad --timeout-s")?;
    let timeout = Duration::from_secs(timeout);

    let mut coordinator = LineClient::connect(coordinator_addr).map_err(|e| e.to_string())?;
    if !coordinator.ping().map_err(|e| format!("coordinator ping: {e}"))? {
        return Err("coordinator did not pong".to_string());
    }
    println!("probe: coordinator ping ok");

    // Deterministic correlated rows over the coordinator's schema.
    let schema = coordinator.schema().map_err(|e| format!("schema: {e}"))?;
    if schema.is_empty() {
        return Err("coordinator reported an empty schema".to_string());
    }
    let cards: Vec<usize> = schema.iter().map(|(_, values)| values.len()).collect();

    // Optional overload storm, run *before* the functional steps: drive
    // the coordinator well past capacity, report the admission counters,
    // then let the normal probe prove the node recovered.
    if let Some(total) = options.value("--storm-requests") {
        let total: usize = total.parse().map_err(|_| format!("bad --storm-requests `{total}`"))?;
        let connections = 8usize;
        let storm = pka_fabric::StormConfig {
            connections,
            requests_per_conn: total.div_ceil(connections).max(1),
            rows_per_request: 4,
            cards: cards.clone(),
            deadline_ms: None,
            window: 32,
            seed: 0x5eed,
        };
        let addr = std::net::ToSocketAddrs::to_socket_addrs(coordinator_addr)
            .map_err(|e| format!("bad coordinator address: {e}"))?
            .next()
            .ok_or("coordinator address resolved to nothing")?;
        let report = pka_fabric::ingest_storm(addr, &storm).map_err(|e| format!("storm: {e}"))?;
        let stats = coordinator.server_stats().map_err(|e| format!("server stats: {e}"))?;
        println!(
            "probe: storm offered={} accepted={} shed={} rate_limited={} \
             deadline_exceeded={} unanswered={} queue_depth_max={} engine_queue_cap={} \
             shed_writes={} elapsed_ms={}",
            report.offered,
            report.accepted,
            report.overloaded,
            stats.rate_limited,
            stats.deadline_exceeded,
            report.unanswered,
            report.max_queue_depth,
            stats.engine_queue_cap,
            stats.shed_writes,
            report.elapsed.as_millis(),
        );
        if report.accepted == 0 {
            return Err("storm: no request was accepted at all".to_string());
        }
        // Normal traffic must flow again immediately after the storm.
        if !coordinator.ping().map_err(|e| format!("post-storm ping: {e}"))? {
            return Err("coordinator did not pong after the storm".to_string());
        }
        println!("probe: post-storm ping ok");
    }

    let rows: Vec<Vec<usize>> = (0..row_count)
        .map(|k| cards.iter().enumerate().map(|(a, &card)| (k + a * (k % 3)) % card).collect())
        .collect();

    // Ingest: spread across the ingest nodes if any were given, else feed
    // the coordinator directly.
    if ingest_addrs.is_empty() {
        coordinator.ingest(&rows).map_err(|e| format!("coordinator ingest: {e}"))?;
        println!("probe: ingested {} rows into the coordinator", rows.len());
    } else {
        for (i, addr) in ingest_addrs.iter().enumerate() {
            let share: Vec<Vec<usize>> =
                rows.iter().skip(i).step_by(ingest_addrs.len()).cloned().collect();
            let mut node = LineClient::connect(addr).map_err(|e| format!("ingest {addr}: {e}"))?;
            node.ingest(&share).map_err(|e| format!("ingest {addr}: {e}"))?;
            println!("probe: ingested {} rows into {addr}", share.len());
        }
        // Wait for the pushers to deliver every tuple.
        wait_for(timeout, "coordinator to hold all pushed tuples", || {
            let stats = coordinator.stats().map_err(|e| e.to_string())?;
            Ok(stats.total_ingested >= rows.len() as u64)
        })?;
        println!("probe: coordinator holds all {} tuples", rows.len());
    }

    let refit = coordinator.refresh().map_err(|e| format!("refresh: {e}"))?;
    println!("probe: coordinator snapshot version {}", refit.version);
    // Durability counters, for crash-recovery scripts to grep: how much
    // of the coordinator's state came back from journal/checkpoint at
    // boot, and how stale its sources are now.
    let stats = coordinator.stats().map_err(|e| format!("stats: {e}"))?;
    println!(
        "probe: recovery recovered_sources={} recovered_tuples={} \
         journal_truncated_bytes={} journal_records={} checkpoints_written={} \
         max_push_age_ms={}",
        stats.recovered_sources,
        stats.recovered_tuples,
        stats.journal_truncated_bytes,
        stats.journal_records,
        stats.checkpoints_written,
        stats.max_push_age_ms.map_or_else(|| "none".to_string(), |ms| ms.to_string()),
    );
    let (attr0, values0) = &schema[0];
    let reference = coordinator
        .query(&[(attr0, &values0[0])], &[])
        .map_err(|e| format!("coordinator query: {e}"))?;

    for addr in &replica_addrs {
        let mut replica = LineClient::connect(addr).map_err(|e| format!("replica {addr}: {e}"))?;
        let mut last_seen = 0u64;
        wait_for(timeout, "replica to reach the coordinator's version", || {
            let version = replica.snapshot_version().map_err(|e| e.to_string())?.unwrap_or(0);
            if version < last_seen {
                return Err(format!("replica {addr} went backwards: {last_seen} -> {version}"));
            }
            last_seen = version;
            Ok(version >= refit.version)
        })?;
        let answer = replica
            .query(&[(attr0, &values0[0])], &[])
            .map_err(|e| format!("replica {addr} query: {e}"))?;
        if (answer.probability - reference.probability).abs() > 1e-9 {
            return Err(format!(
                "replica {addr} answered {} where the coordinator answered {}",
                answer.probability, reference.probability
            ));
        }
        // Writes must be rejected on a replica.
        match replica.ingest(&rows[..1]) {
            Err(pka_serve::ServeError::Remote { code, .. }) if code == "role-unsupported" => {}
            other => return Err(format!("replica {addr} did not refuse ingest: {other:?}")),
        }
        println!("probe: replica {addr} converged (version {last_seen})");
    }

    // Optional fan-in check: park N extra idle connections on the
    // coordinator and make it count them, proving the reactor carries the
    // fabric's connection load without a thread per socket.
    if let Some(hold) = options.value("--idle-hold") {
        let hold: usize = hold.parse().map_err(|_| format!("bad --idle-hold `{hold}`"))?;
        let mut held = Vec::with_capacity(hold);
        for i in 0..hold {
            held.push(
                std::net::TcpStream::connect(coordinator_addr)
                    .map_err(|e| format!("idle-hold connect {i}: {e}"))?,
            );
        }
        // `+ 1` for the probe's own protocol connection; pusher and pump
        // connections from the other roles only push the count higher.
        wait_for(timeout, "coordinator to report every held connection", || {
            let stats = coordinator.server_stats().map_err(|e| e.to_string())?;
            Ok(stats.open_connections > hold as u64)
        })?;
        let stats = coordinator.server_stats().map_err(|e| e.to_string())?;
        println!(
            "probe: idle-hold ok ({} connections open, shard occupancy {:?})",
            stats.open_connections, stats.shard_connections
        );
        drop(held);
    }

    if options.present("--shutdown") {
        for addr in replica_addrs.iter().chain(ingest_addrs.iter()) {
            let mut node =
                LineClient::connect(addr).map_err(|e| format!("shutdown {addr}: {e}"))?;
            node.shutdown().map_err(|e| format!("shutdown {addr}: {e}"))?;
            println!("probe: {addr} shutdown acknowledged");
        }
        coordinator.shutdown().map_err(|e| format!("coordinator shutdown: {e}"))?;
        println!("probe: coordinator shutdown acknowledged");
    }
    Ok(())
}

/// Polls `check` until it returns true or `timeout` elapses.
fn wait_for(
    timeout: Duration,
    what: &str,
    mut check: impl FnMut() -> Result<bool, String>,
) -> Result<(), String> {
    let start = Instant::now();
    loop {
        if check()? {
            return Ok(());
        }
        if start.elapsed() > timeout {
            return Err(format!("timed out waiting for {what}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
