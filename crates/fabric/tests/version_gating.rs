//! Replica version gating and fabric role gating, over the real wire.
//!
//! Every test here runs against live `pka-serve` servers in fabric roles
//! and drives them through [`LineClient`], so what is asserted is the
//! behaviour a remote peer actually observes: stale, duplicate and
//! reordered `snapshot-sync` offers are acknowledged no-ops, replica
//! versions are monotone under *any* delivery order (a property test), a
//! role refuses the methods it does not serve with the structured
//! `role-unsupported` error, and forged `format_version` stamps are
//! refused with `format-version-mismatch`.

use pka_contingency::{ContingencyTable, Schema};
use pka_core::Acquisition;
use pka_core::KnowledgeBase;
use pka_serve::{protocol, FabricRole, LineClient, ServeConfig, ServeError, Server};
use pka_stream::{Snapshot, SnapshotMeta, WIRE_FORMAT_VERSION};
use proptest::prelude::*;
use serde::{Serialize, Value};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::uniform(&[2, 2]).unwrap().into_shared()
}

/// A fitted knowledge base over correlated counts (scaled by `seed` so
/// distinct versions carry distinguishable models).
fn fitted_kb(seed: u64) -> KnowledgeBase {
    let counts = vec![40 + seed, 10, 10, 40 + seed];
    let table = ContingencyTable::from_counts(schema(), counts).unwrap();
    Acquisition::with_defaults().run(&table).unwrap().knowledge_base
}

/// A snapshot offer (meta + knowledge base) stamped with `version`.
fn offer(version: u64) -> (SnapshotMeta, KnowledgeBase) {
    let snapshot = Snapshot::new(fitted_kb(version), version, 100 + version, version > 1);
    (snapshot.meta(), snapshot.knowledge_base().clone())
}

fn start(role: FabricRole) -> pka_serve::ServerHandle {
    Server::start(schema(), ServeConfig::new().with_role(role)).unwrap()
}

fn remote_code(result: Result<impl std::fmt::Debug, ServeError>) -> String {
    match result {
        Err(ServeError::Remote { code, .. }) => code,
        other => panic!("expected a structured remote error, got {other:?}"),
    }
}

#[test]
fn stale_duplicate_and_reordered_offers_are_acknowledged_noops() {
    let server = start(FabricRole::Replica);
    let mut client = LineClient::connect(server.addr()).unwrap();

    let (meta1, kb1) = offer(1);
    let (meta2, kb2) = offer(2);

    let first = client.snapshot_sync(&meta1, &kb1).unwrap();
    assert!(first.applied);
    assert_eq!(first.version, 1);

    // Duplicate delivery: acknowledged, not applied, version unchanged.
    let duplicate = client.snapshot_sync(&meta1, &kb1).unwrap();
    assert!(!duplicate.applied);
    assert_eq!(duplicate.version, 1);

    let second = client.snapshot_sync(&meta2, &kb2).unwrap();
    assert!(second.applied);
    assert_eq!(second.version, 2);

    // A delayed older offer arriving after a newer one: a no-op too.
    let reordered = client.snapshot_sync(&meta1, &kb1).unwrap();
    assert!(!reordered.applied);
    assert_eq!(reordered.version, 2);

    // The replica still serves the newer snapshot.
    assert_eq!(client.snapshot_version().unwrap(), Some(2));
    server.shutdown().unwrap();
}

#[test]
fn roles_refuse_the_methods_they_do_not_serve() {
    let rows = vec![vec![0usize, 0]];
    let (meta, kb) = offer(1);
    let shard = {
        let mut shard = pka_stream::CountShard::new(schema());
        shard.record(&[0, 0]).unwrap();
        shard
    };

    // A replica serves reads only.
    let replica = start(FabricRole::Replica);
    let mut client = LineClient::connect(replica.addr()).unwrap();
    assert_eq!(remote_code(client.ingest(&rows)), "role-unsupported");
    assert_eq!(remote_code(client.refresh()), "role-unsupported");
    assert_eq!(remote_code(client.shard_push("node-a", 1, &shard)), "role-unsupported");
    assert!(client.snapshot_sync(&meta, &kb).is_ok());
    assert!(client.shard_pull().is_ok(), "shard-pull is read-only and serves on every role");
    replica.shutdown().unwrap();

    // An ingest node accepts rows but no shard or snapshot deliveries.
    let ingest_node = start(FabricRole::IngestNode);
    let mut client = LineClient::connect(ingest_node.addr()).unwrap();
    assert!(client.ingest(&rows).is_ok());
    assert_eq!(remote_code(client.shard_push("node-a", 1, &shard)), "role-unsupported");
    assert_eq!(remote_code(client.snapshot_sync(&meta, &kb)), "role-unsupported");
    ingest_node.shutdown().unwrap();

    // A coordinator accepts shard pushes but never snapshot offers.
    let coordinator = start(FabricRole::Coordinator);
    let mut client = LineClient::connect(coordinator.addr()).unwrap();
    assert!(client.shard_push("node-a", 1, &shard).unwrap().applied);
    assert_eq!(remote_code(client.snapshot_sync(&meta, &kb)), "role-unsupported");
    coordinator.shutdown().unwrap();

    // A standalone server predates the fabric: everything but
    // snapshot-sync works.
    let standalone = start(FabricRole::Standalone);
    let mut client = LineClient::connect(standalone.addr()).unwrap();
    assert!(client.ingest(&rows).is_ok());
    assert!(client.shard_push("node-a", 1, &shard).unwrap().applied);
    assert_eq!(remote_code(client.snapshot_sync(&meta, &kb)), "role-unsupported");
    standalone.shutdown().unwrap();
}

#[test]
fn forged_format_versions_are_refused_with_the_structured_code() {
    let replica = start(FabricRole::Replica);
    let mut client = LineClient::connect(replica.addr()).unwrap();
    let (meta, kb) = offer(1);

    // Forge the meta's format stamp.
    let mut meta_value = Serialize::serialize(&meta);
    if let Value::Object(fields) = &mut meta_value {
        for (name, value) in fields.iter_mut() {
            if name == "format_version" {
                *value = Value::U64(WIRE_FORMAT_VERSION + 7);
            }
        }
    }
    let params =
        protocol::object([("meta", meta_value), ("knowledge_base", Serialize::serialize(&kb))]);
    let refused = client.call("snapshot-sync", params);
    assert_eq!(remote_code(refused), "format-version-mismatch");
    replica.shutdown().unwrap();

    // Forge a shard's format stamp on the coordinator path too.
    let coordinator = start(FabricRole::Coordinator);
    let mut client = LineClient::connect(coordinator.addr()).unwrap();
    let mut shard = pka_stream::CountShard::new(schema());
    shard.record(&[0, 0]).unwrap();
    let mut shard_value = Serialize::serialize(&shard);
    if let Value::Object(fields) = &mut shard_value {
        for (name, value) in fields.iter_mut() {
            if name == "format_version" {
                *value = Value::U64(0);
            }
        }
    }
    let params = protocol::object([
        ("source", Value::Str("node-a".to_string())),
        ("seq", Value::U64(1)),
        ("shard", shard_value),
    ]);
    let refused = client.call("shard-push", params);
    assert_eq!(remote_code(refused), "format-version-mismatch");
    coordinator.shutdown().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under ANY delivery order of snapshot versions, a replica's observed
    /// version equals the running maximum, an offer is applied exactly
    /// when its version exceeds everything seen before, and the observed
    /// sequence is monotone.
    #[test]
    fn prop_replica_versions_are_monotone_under_any_delivery_order(
        versions in proptest::collection::vec(1u64..6, 1..8),
    ) {
        let server = start(FabricRole::Replica);
        let mut client = LineClient::connect(server.addr()).unwrap();
        let mut highest = 0u64;
        for &version in &versions {
            let (meta, kb) = offer(version);
            let summary = client.snapshot_sync(&meta, &kb).unwrap();
            prop_assert_eq!(summary.applied, version > highest);
            highest = highest.max(version);
            prop_assert_eq!(summary.version, highest);
            prop_assert_eq!(client.snapshot_version().unwrap(), Some(highest));
        }
        server.shutdown().unwrap();
    }
}
