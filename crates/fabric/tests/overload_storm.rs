//! Overload chaos test: an ingest storm hammers the coordinator while
//! ingest nodes push shards through the same bounded engine queue.
//!
//! Asserts the ISSUE's graceful-degradation criteria end to end: the
//! storm is partially shed with structured `server-overloaded` refusals
//! (never dropped silently), shed shard-pushes self-heal through the
//! cumulative re-push protocol, and once the storm passes the
//! coordinator's fit equals a one-shot acquisition over exactly the rows
//! that were accepted — overload degrades throughput, never correctness.

use pka_contingency::{Assignment, ContingencyTable, Schema};
use pka_core::{Acquisition, AcquisitionConfig, KnowledgeBase};
use pka_fabric::{
    ingest_storm, Coordinator, CoordinatorConfig, IngestNode, IngestNodeConfig, RetryPolicy,
    StormConfig,
};
use pka_maxent::ConvergenceCriteria;
use pka_serve::{LineClient, ServeConfig};
use pka_stream::{CountShard, RefreshPolicy, StreamConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn schema() -> Arc<Schema> {
    Schema::uniform(&[3, 2, 2]).unwrap().into_shared()
}

fn rows(offset: usize, n: usize) -> Vec<Vec<usize>> {
    (offset..offset + n)
        .map(|k| {
            let a = k % 3;
            let b = if k % 7 == 0 { 1 - (a % 2) } else { a % 2 };
            let c = (k / 5) % 2;
            vec![a, b, c]
        })
        .collect()
}

fn tight_acquisition() -> AcquisitionConfig {
    AcquisitionConfig::new().with_convergence(
        ConvergenceCriteria::new().with_tolerance(1e-13).with_max_iterations(5000),
    )
}

fn wait_for(timeout: Duration, what: &str, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn storm_is_shed_gracefully_and_the_fit_stays_exact() {
    let timeout = Duration::from_secs(60);
    let retry = RetryPolicy::fast();

    // A coordinator with the smallest possible write queue: one command in
    // flight, everything else shed.  Manual refresh keeps publishes under
    // test control.
    let coordinator = Coordinator::start(
        schema(),
        CoordinatorConfig::new()
            .with_serve(
                ServeConfig::new().with_engine_queue_cap(1).with_stream(
                    StreamConfig::new()
                        .with_policy(RefreshPolicy::Manual)
                        .with_acquisition(tight_acquisition()),
                ),
            )
            .with_retry(retry.clone()),
    )
    .unwrap();

    // Two pushers whose shard-pushes must squeeze through the same cap-1
    // queue the storm is flooding.
    let nodes: Vec<IngestNode> = ["storm-a", "storm-b"]
        .iter()
        .map(|name| {
            IngestNode::start(
                schema(),
                IngestNodeConfig::new(coordinator.addr().to_string())
                    .with_serve(ServeConfig::new().with_node_name(*name))
                    .with_push_interval(Duration::from_millis(2))
                    .with_retry(retry.clone()),
            )
            .unwrap()
        })
        .collect();

    // Seed the pushers, then storm the coordinator while they deliver.
    let mut node_rows: Vec<Vec<usize>> = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        let share = rows(i * 120, 120);
        LineClient::connect(node.addr()).unwrap().ingest(&share).unwrap();
        node_rows.extend(share);
    }

    // Every storm row is [0, 0, 0] (cardinalities of 1 clamp the
    // generator), so the post-storm table is fully determined by the
    // *count* of accepted requests even though which requests were shed is
    // a race.  Sheds may lose storm rows — never corrupt surviving ones.
    let storm = StormConfig {
        connections: 8,
        requests_per_conn: 64,
        rows_per_request: 4,
        cards: vec![1, 1, 1],
        deadline_ms: None,
        window: 32,
        seed: 0x5eed,
    };
    let report = ingest_storm(coordinator.addr(), &storm).unwrap();

    assert_eq!(report.offered, 8 * 64);
    assert_eq!(
        report.offered,
        report.accepted + report.overloaded + report.deadline_exceeded + report.other_errors,
        "every offered request must be answered, one way or the other: {report:?}"
    );
    assert_eq!(report.unanswered, 0, "no connection may die mid-storm: {report:?}");
    assert_eq!(report.other_errors, 0, "only structured sheds are acceptable: {report:?}");
    assert!(report.accepted > 0, "shedding must not starve the storm entirely: {report:?}");
    assert!(
        report.overloaded > 0,
        "8 pipelined connections against a cap-1 queue must shed: {report:?}"
    );
    // Depth gauge stays pinned by the cap: at most 1 queued write plus the
    // handful of control commands (the stats sampler) in flight.
    assert!(
        report.max_queue_depth <= 4,
        "queue depth {} escaped the cap-1 bound",
        report.max_queue_depth
    );

    // The coordinator booked every shed and stayed inspectable throughout.
    let mut client = LineClient::connect(coordinator.addr()).unwrap();
    let server_stats = client.server_stats().unwrap();
    assert!(
        server_stats.shed_writes >= report.overloaded,
        "server sheds {} cannot undercount the storm's {} refusals",
        server_stats.shed_writes,
        report.overloaded
    );
    assert_eq!(server_stats.engine_queue_cap, 1);

    // Cumulative re-push heals every shed shard-push: the pushers only
    // advance their sequence on success, so the coordinator converges on
    // the full node row count plus the storm's accepted tuples.
    let expected = (node_rows.len() + report.accepted as usize * storm.rows_per_request) as u64;
    wait_for(timeout, "shed shard-pushes to be re-pushed and absorbed", || {
        client.stats().unwrap().total_ingested == expected
    });

    // One-shot acquisition over exactly the accepted rows.
    let mut shard = CountShard::new(schema());
    shard.record_batch(&node_rows).unwrap();
    let zeros = vec![vec![0usize, 0, 0]; report.accepted as usize * storm.rows_per_request];
    shard.record_batch(&zeros).unwrap();
    let table: ContingencyTable = shard.into_table();
    assert_eq!(table.total(), expected);
    let one_shot: KnowledgeBase =
        Acquisition::new(tight_acquisition()).run(&table).unwrap().knowledge_base;

    let refit = client.refresh().unwrap();
    assert_eq!(refit.observations, expected, "refit must cover every accepted tuple");
    let names = [("attr0", 3usize), ("attr1", 2), ("attr2", 2)];
    for (attr, (name, card)) in names.iter().enumerate() {
        for v in 0..*card {
            let value = format!("v{v}");
            let answer = client.query(&[(*name, value.as_str())], &[]).unwrap();
            let expected_p = one_shot.probability(&Assignment::single(attr, v));
            assert!(
                (answer.probability - expected_p).abs() < 1e-9,
                "P({name}={value}): coordinator {} vs one-shot {expected_p}",
                answer.probability,
            );
        }
    }

    // Recovery: the queue drained and ordinary traffic flows again.
    assert!(client.ping().unwrap());
    assert_eq!(client.server_stats().unwrap().engine_queue_depth, 0);

    for node in nodes {
        node.shutdown().unwrap();
    }
    coordinator.shutdown().unwrap();
}
