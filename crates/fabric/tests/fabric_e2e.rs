//! End-to-end fabric test: 2 ingest nodes × 3 batches, one coordinator,
//! two read replicas.
//!
//! Asserts the ISSUE's acceptance criteria: the replicas' answers match a
//! one-shot acquisition over the union of all rows to 1e-9, every reader
//! observes a strictly monotone version sequence, and reads never block
//! (a hammering reader thread makes continuous progress throughout).

use pka_contingency::{Assignment, ContingencyTable, Schema};
use pka_core::{Acquisition, AcquisitionConfig, KnowledgeBase};
use pka_fabric::{
    Coordinator, CoordinatorConfig, IngestNode, IngestNodeConfig, Replica, ReplicaConfig,
    RetryPolicy,
};
use pka_maxent::ConvergenceCriteria;
use pka_serve::{LineClient, ServeConfig};
use pka_stream::{CountShard, RefreshPolicy, StreamConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn schema() -> Arc<Schema> {
    Schema::uniform(&[3, 2, 2]).unwrap().into_shared()
}

/// Deterministic correlated rows: attr1 follows attr0's parity, attr2
/// cycles slowly — enough structure for acquisition to find constraints.
fn rows(offset: usize, n: usize) -> Vec<Vec<usize>> {
    (offset..offset + n)
        .map(|k| {
            let a = k % 3;
            let b = if k % 7 == 0 { 1 - (a % 2) } else { a % 2 };
            let c = (k / 5) % 2;
            vec![a, b, c]
        })
        .collect()
}

/// A solver setting tight enough that warm-started coordinator refits and
/// the cold one-shot fit agree far below the 1e-9 assertion threshold.
fn tight_acquisition() -> AcquisitionConfig {
    AcquisitionConfig::new().with_convergence(
        ConvergenceCriteria::new().with_tolerance(1e-13).with_max_iterations(5000),
    )
}

fn wait_for(timeout: Duration, what: &str, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn fabric_converges_to_the_one_shot_acquisition() {
    let timeout = Duration::from_secs(60);
    let retry = RetryPolicy::fast();

    // Replicas first (push-fed; no coordinator address needed).
    let replicas: Vec<Replica> = (0..2)
        .map(|_| Replica::start(schema(), ReplicaConfig::new().with_retry(retry.clone())).unwrap())
        .collect();

    // The coordinator knows its replicas and refits only on demand, so the
    // test controls exactly when versions are published.
    let mut coordinator_config = CoordinatorConfig::new()
        .with_serve(
            ServeConfig::new().with_stream(
                StreamConfig::new()
                    .with_policy(RefreshPolicy::Manual)
                    .with_acquisition(tight_acquisition()),
            ),
        )
        .with_sync_interval(Duration::from_millis(10))
        .with_retry(retry.clone());
    for replica in &replicas {
        coordinator_config = coordinator_config.with_replica(replica.addr().to_string());
    }
    let coordinator = Coordinator::start(schema(), coordinator_config).unwrap();

    // Two push-capable ingest nodes.
    let nodes: Vec<IngestNode> = ["node-a", "node-b"]
        .iter()
        .map(|name| {
            IngestNode::start(
                schema(),
                IngestNodeConfig::new(coordinator.addr().to_string())
                    .with_serve(ServeConfig::new().with_node_name(*name))
                    .with_push_interval(Duration::from_millis(10))
                    .with_retry(retry.clone()),
            )
            .unwrap()
        })
        .collect();

    // A reader hammering replica 0's snapshot slot for the whole run:
    // versions must be monotone and loads must keep completing (the load
    // path is wait-free, so progress is continuous even mid-publish).
    let reader_handle = replicas[0].snapshots();
    let reader_stop = Arc::new(AtomicBool::new(false));
    let reader_loads = Arc::new(AtomicU64::new(0));
    let reader = {
        let stop = Arc::clone(&reader_stop);
        let loads = Arc::clone(&reader_loads);
        std::thread::spawn(move || {
            let mut last = 0u64;
            let probe = Assignment::from_pairs([(0, 0), (1, 0)]);
            while !stop.load(Ordering::Relaxed) {
                if let Some(snapshot) = reader_handle.load() {
                    let version = snapshot.version();
                    assert!(version >= last, "reader saw version {version} after {last}");
                    last = version;
                    let p = snapshot.knowledge_base().probability(&probe);
                    assert!(p.is_finite() && p >= 0.0);
                }
                loads.fetch_add(1, Ordering::Relaxed);
            }
            last
        })
    };

    // 3 batches per node, refreshing (and therefore publishing) after each
    // round so the replicas step through versions 1, 2, 3.
    let mut coordinator_client = LineClient::connect(coordinator.addr()).unwrap();
    let batch = 80usize;
    let mut all_rows: Vec<Vec<usize>> = Vec::new();
    let mut replica_versions: Vec<Vec<u64>> = vec![Vec::new(); replicas.len()];
    for round in 0..3 {
        for (i, node) in nodes.iter().enumerate() {
            let share = rows((round * nodes.len() + i) * batch, batch);
            let mut client = LineClient::connect(node.addr()).unwrap();
            client.ingest(&share).unwrap();
            all_rows.extend(share);
        }
        let expected = all_rows.len() as u64;
        wait_for(timeout, "pushers to deliver every tuple", || {
            coordinator_client.stats().unwrap().total_ingested >= expected
        });
        let refit = coordinator_client.refresh().unwrap();
        assert_eq!(refit.version, round as u64 + 1);
        assert_eq!(refit.observations, expected, "refit must cover all pushed tuples");
        for (i, replica) in replicas.iter().enumerate() {
            let mut client = LineClient::connect(replica.addr()).unwrap();
            wait_for(timeout, "replica to reach the coordinator's version", || {
                client.snapshot_version().unwrap().unwrap_or(0) >= refit.version
            });
            replica_versions[i].push(client.snapshot_version().unwrap().unwrap());
        }
    }

    // Every replica stepped through strictly increasing versions.
    for versions in &replica_versions {
        assert_eq!(versions.len(), 3);
        assert!(versions.windows(2).all(|w| w[0] < w[1]), "versions not monotone: {versions:?}");
    }

    // One-shot acquisition over the union of every row ever ingested.
    let mut shard = CountShard::new(schema());
    shard.record_batch(&all_rows).unwrap();
    let table: ContingencyTable = shard.into_table();
    assert_eq!(table.total(), all_rows.len() as u64);
    let one_shot: KnowledgeBase =
        Acquisition::new(tight_acquisition()).run(&table).unwrap().knowledge_base;

    // Replica answers must match the one-shot fit to 1e-9 — marginals over
    // every attribute value plus a conditional.
    let names = [("attr0", 3usize), ("attr1", 2), ("attr2", 2)];
    for replica in &replicas {
        let mut client = LineClient::connect(replica.addr()).unwrap();
        for (attr, card) in names.iter().enumerate() {
            for v in 0..card.1 {
                let value = format!("v{v}");
                let answer = client.query(&[(card.0, value.as_str())], &[]).unwrap();
                let expected = one_shot.probability(&Assignment::single(attr, v));
                assert!(
                    (answer.probability - expected).abs() < 1e-9,
                    "P({}={value}): replica {} vs one-shot {expected}",
                    card.0,
                    answer.probability,
                );
            }
        }
        let conditional = client.query(&[("attr1", "v0")], &[("attr0", "v0")]).unwrap();
        let joint = one_shot.probability(&Assignment::from_pairs([(0, 0), (1, 0)]));
        let evidence = one_shot.probability(&Assignment::single(0, 0));
        assert!(
            (conditional.probability - joint / evidence).abs() < 1e-9,
            "conditional drifted: {} vs {}",
            conditional.probability,
            joint / evidence,
        );
    }

    // The reader made continuous progress the whole time.
    reader_stop.store(true, Ordering::Relaxed);
    let final_version = reader.join().unwrap();
    assert!(final_version <= 3);
    assert!(
        reader_loads.load(Ordering::Relaxed) > 1_000,
        "reader should have completed thousands of wait-free loads"
    );

    // Clean teardown, ingest nodes first so their final flush lands on a
    // live coordinator.
    for node in nodes {
        node.shutdown().unwrap();
    }
    for replica in replicas {
        replica.shutdown().unwrap();
    }
    coordinator.shutdown().unwrap();
}
