//! Fault-injection e2e suite: the fabric's durability story under crash,
//! partition, and byte-level mangling.
//!
//! Three scenarios, each asserting the same invariant the fault-free e2e
//! test does — the fabric converges to the *exact* model a one-shot
//! acquisition over the union of all rows produces (≤ 1e-9), with
//! monotone replica versions — except here the path there runs through a
//! [`ChaosProxy`] and simulated `kill -9`:
//!
//! * An ingest node crashes mid-batch with acknowledged tuples the
//!   coordinator never saw; its restart must recover them **from the
//!   journal** (the partition guarantees no other copy exists).
//! * The coordinator is killed mid-fabric; its replacement must restore
//!   the shard-placement map **from a checkpoint** cut before the kill,
//!   and the replicas must step forward (never backward) onto the
//!   replacement's snapshots.
//! * The ingest→coordinator link flaps through partitions, duplicated
//!   deliveries and corrupted bytes; sequence gating and retries must
//!   absorb all of it without double counting a single tuple.
//!
//! "kill -9" is simulated by copying the durable file *mid-run* and
//! restarting from the copy: both journal appends and checkpoint saves
//! are atomic (length-prefix + CRC, temp-file + rename), so any mid-run
//! copy is exactly the disk image an abrupt death would leave behind,
//! while the original process's graceful teardown writes only to the
//! original paths we then ignore.

use pka_contingency::{Assignment, ContingencyTable, Schema};
use pka_core::{Acquisition, AcquisitionConfig, KnowledgeBase};
use pka_fabric::{
    ChaosProxy, Coordinator, CoordinatorConfig, IngestNode, IngestNodeConfig, Replica,
    ReplicaConfig, RetryPolicy,
};
use pka_maxent::ConvergenceCriteria;
use pka_serve::{EngineStats, LineClient, ServeConfig};
use pka_stream::{CountShard, FsyncPolicy, RefreshPolicy, StreamConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn schema() -> Arc<Schema> {
    Schema::uniform(&[3, 2, 2]).unwrap().into_shared()
}

/// Deterministic correlated rows (same generator as the fault-free e2e
/// test, so the model has real structure to lose).
fn rows(offset: usize, n: usize) -> Vec<Vec<usize>> {
    (offset..offset + n)
        .map(|k| {
            let a = k % 3;
            let b = if k % 7 == 0 { 1 - (a % 2) } else { a % 2 };
            let c = (k / 5) % 2;
            vec![a, b, c]
        })
        .collect()
}

fn tight_acquisition() -> AcquisitionConfig {
    AcquisitionConfig::new().with_convergence(
        ConvergenceCriteria::new().with_tolerance(1e-13).with_max_iterations(5000),
    )
}

fn temp_path(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("pka-chaos-{tag}-{}-{n}", std::process::id()))
}

fn wait_for(timeout: Duration, what: &str, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One-shot acquisition over `all_rows`, the convergence oracle.
fn one_shot(all_rows: &[Vec<usize>]) -> KnowledgeBase {
    let mut shard = CountShard::new(schema());
    shard.record_batch(all_rows).unwrap();
    let table: ContingencyTable = shard.into_table();
    assert_eq!(table.total(), all_rows.len() as u64);
    Acquisition::new(tight_acquisition()).run(&table).unwrap().knowledge_base
}

/// Asserts a live node's marginals match the oracle to 1e-9.
fn assert_converged(addr: std::net::SocketAddr, oracle: &KnowledgeBase) {
    let mut client = LineClient::connect(addr).unwrap();
    for (attr, card) in [(0usize, 3usize), (1, 2), (2, 2)] {
        for v in 0..card {
            let value = format!("v{v}");
            let name = format!("attr{attr}");
            let answer = client.query(&[(name.as_str(), value.as_str())], &[]).unwrap();
            let expected = oracle.probability(&Assignment::single(attr, v));
            assert!(
                (answer.probability - expected).abs() < 1e-9,
                "P({name}={value}): fabric {} vs one-shot {expected}",
                answer.probability,
            );
        }
    }
}

fn stats_of(addr: std::net::SocketAddr) -> EngineStats {
    LineClient::connect(addr).unwrap().stats().unwrap()
}

#[test]
fn ingest_node_crash_recovers_acknowledged_tuples_from_its_journal() {
    let timeout = Duration::from_secs(60);
    let retry = RetryPolicy::fast();
    let journal = temp_path("ingest-journal");
    let crash_image = temp_path("ingest-crash-image");

    let coordinator = Coordinator::start(
        schema(),
        CoordinatorConfig::new()
            .with_serve(
                ServeConfig::new().with_stream(
                    StreamConfig::new()
                        .with_policy(RefreshPolicy::Manual)
                        .with_acquisition(tight_acquisition()),
                ),
            )
            .with_retry(retry.clone()),
    )
    .unwrap();
    // The node reaches the coordinator only through the proxy, so a
    // partition really does isolate it.
    let proxy = ChaosProxy::start(coordinator.addr().to_string()).unwrap();

    let node_config = |journal: &PathBuf| {
        IngestNodeConfig::new(proxy.addr().to_string())
            .with_serve(
                ServeConfig::new()
                    .with_node_name("node-a")
                    .with_journal(journal)
                    .with_journal_fsync(FsyncPolicy::PerRecord),
            )
            .with_push_interval(Duration::from_millis(10))
            .with_retry(retry.clone())
    };
    let node = IngestNode::start(schema(), node_config(&journal)).unwrap();

    // Batch 1 flows normally: ingested, journalled, pushed.
    let batch1 = rows(0, 120);
    LineClient::connect(node.addr()).unwrap().ingest(&batch1).unwrap();
    let mut coordinator_client = LineClient::connect(coordinator.addr()).unwrap();
    wait_for(timeout, "batch 1 to reach the coordinator", || {
        coordinator_client.stats().unwrap().total_ingested >= batch1.len() as u64
    });

    // Partition, then ingest batch 2: the node acknowledges it (and the
    // per-record fsync has it on disk) but the coordinator never sees it.
    proxy.plan().partition(true);
    proxy.sever_all();
    let batch2 = rows(batch1.len(), 90);
    LineClient::connect(node.addr()).unwrap().ingest(&batch2).unwrap();
    assert_eq!(
        stats_of(node.addr()).journal_records as usize,
        2,
        "both acknowledged batches must be journalled"
    );

    // `kill -9`: snapshot the journal as it is right now, then let the
    // process die.  The node's graceful teardown keeps appending to the
    // *original* journal path; the crash image is what an abrupt death
    // would have left, and it is all the restart gets.
    std::fs::copy(&journal, &crash_image).unwrap();
    drop(node);
    let still_missing = coordinator_client.stats().unwrap().total_ingested;
    assert_eq!(
        still_missing,
        batch1.len() as u64,
        "partition must have kept batch 2 off the coordinator"
    );

    // Restart from the crash image and heal the network.
    proxy.plan().partition(false);
    let revived = IngestNode::start(schema(), node_config(&crash_image)).unwrap();
    let revived_stats = stats_of(revived.addr());
    assert_eq!(
        revived_stats.recovered_tuples,
        (batch1.len() + batch2.len()) as u64,
        "journal recovery must restore every acknowledged tuple"
    );
    assert_eq!(revived_stats.recovered_sources, 1);

    // The revived pusher ships the recovered cumulative shard; sequence
    // gating dedupes the already-delivered prefix, so the coordinator
    // ends at exactly the union.
    let expected = (batch1.len() + batch2.len()) as u64;
    wait_for(timeout, "recovered tuples to reach the coordinator", || {
        coordinator_client.stats().unwrap().total_ingested >= expected
    });
    assert_eq!(coordinator_client.stats().unwrap().total_ingested, expected, "no double counts");

    coordinator_client.refresh().unwrap();
    let mut all_rows = batch1;
    all_rows.extend(batch2);
    assert_converged(coordinator.addr(), &one_shot(&all_rows));

    revived.shutdown().unwrap();
    coordinator.shutdown().unwrap();
    for path in [journal, crash_image] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn coordinator_kill_restores_the_placement_map_from_a_checkpoint() {
    let timeout = Duration::from_secs(60);
    let retry = RetryPolicy::fast();
    let checkpoint = temp_path("coord-checkpoint");
    let crash_image = temp_path("coord-crash-image");

    let replicas: Vec<Replica> = (0..2)
        .map(|_| Replica::start(schema(), ReplicaConfig::new().with_retry(retry.clone())).unwrap())
        .collect();
    let coordinator_config = |checkpoint: &PathBuf| {
        let mut config = CoordinatorConfig::new()
            .with_serve(
                ServeConfig::new()
                    .with_stream(
                        StreamConfig::new()
                            .with_policy(RefreshPolicy::Manual)
                            .with_acquisition(tight_acquisition()),
                    )
                    .with_checkpoint(checkpoint)
                    .with_checkpoint_interval(Duration::from_millis(25)),
            )
            .with_sync_interval(Duration::from_millis(10))
            .with_retry(RetryPolicy::fast());
        for replica in &replicas {
            config = config.with_replica(replica.addr().to_string());
        }
        config
    };
    let coordinator = Coordinator::start(schema(), coordinator_config(&checkpoint)).unwrap();
    // Ingest nodes dial the proxy, so the coordinator can "move" without
    // them noticing — the proxy plays the stable address a load balancer
    // or virtual IP would provide.
    let proxy = ChaosProxy::start(coordinator.addr().to_string()).unwrap();
    let nodes: Vec<IngestNode> = ["node-a", "node-b"]
        .iter()
        .map(|name| {
            IngestNode::start(
                schema(),
                IngestNodeConfig::new(proxy.addr().to_string())
                    .with_serve(ServeConfig::new().with_node_name(*name))
                    .with_push_interval(Duration::from_millis(10))
                    .with_retry(retry.clone()),
            )
            .unwrap()
        })
        .collect();

    // Round 1: both nodes ingest, the coordinator publishes version 1 and
    // the replicas converge onto it.
    let batch = 80usize;
    let mut all_rows: Vec<Vec<usize>> = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        let share = rows(i * batch, batch);
        LineClient::connect(node.addr()).unwrap().ingest(&share).unwrap();
        all_rows.extend(share);
    }
    let round1_total = all_rows.len() as u64;
    let mut coordinator_client = LineClient::connect(coordinator.addr()).unwrap();
    wait_for(timeout, "round 1 to reach the coordinator", || {
        coordinator_client.stats().unwrap().total_ingested >= round1_total
    });
    let refit = coordinator_client.refresh().unwrap();
    assert_eq!(refit.version, 1);
    for replica in &replicas {
        let mut client = LineClient::connect(replica.addr()).unwrap();
        wait_for(timeout, "replica to reach version 1", || {
            client.snapshot_version().unwrap().unwrap_or(0) >= 1
        });
    }
    // Cut the crash image once a checkpoint has captured all of round 1
    // *and* the publish; checkpoint saves are atomic (temp + rename), so
    // every copy is a complete, loadable recovery point.
    wait_for(timeout, "the checkpoint to cover round 1", || {
        std::fs::copy(&checkpoint, &crash_image).unwrap();
        pka_stream::FabricCheckpoint::load(&crash_image)
            .map(|cp| cp.total_tuples() >= round1_total && cp.version >= 1)
            .unwrap_or(false)
    });

    // `kill -9` the coordinator: sever its connections and drop it.  The
    // graceful teardown writes only to the original checkpoint path; the
    // replacement boots from the crash image alone.
    proxy.plan().partition(true);
    proxy.sever_all();
    drop(coordinator);
    proxy.plan().partition(false);

    let replacement = Coordinator::start(schema(), coordinator_config(&crash_image)).unwrap();
    proxy.retarget(replacement.addr().to_string());
    proxy.sever_all();

    let recovered = stats_of(replacement.addr());
    assert_eq!(recovered.recovered_sources, 2, "both sources must come back");
    assert_eq!(recovered.recovered_tuples, round1_total, "round 1 must come back whole");
    assert_eq!(recovered.total_ingested, round1_total);

    // Round 2 flows into the replacement through the retargeted proxy.
    for (i, node) in nodes.iter().enumerate() {
        let share = rows(all_rows.len() + i * batch, batch);
        LineClient::connect(node.addr()).unwrap().ingest(&share).unwrap();
        all_rows.extend(share);
    }
    let mut replacement_client = LineClient::connect(replacement.addr()).unwrap();
    let expected = all_rows.len() as u64;
    wait_for(timeout, "round 2 to reach the replacement", || {
        replacement_client.stats().unwrap().total_ingested >= expected
    });
    assert_eq!(replacement_client.stats().unwrap().total_ingested, expected, "no double counts");
    let refit = replacement_client.refresh().unwrap();
    assert!(
        refit.version >= 2,
        "restored version counter must move forward, got {}",
        refit.version
    );

    // Replicas step onto the replacement's snapshot — forward, never back.
    let oracle = one_shot(&all_rows);
    for replica in &replicas {
        let mut client = LineClient::connect(replica.addr()).unwrap();
        wait_for(timeout, "replica to reach the replacement's version", || {
            client.snapshot_version().unwrap().unwrap_or(0) >= refit.version
        });
        assert_converged(replica.addr(), &oracle);
    }

    for node in nodes {
        node.shutdown().unwrap();
    }
    for replica in replicas {
        replica.shutdown().unwrap();
    }
    replacement.shutdown().unwrap();
    proxy.stop();
    for path in [checkpoint, crash_image] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn flapping_partitions_duplication_and_corruption_still_converge_exactly() {
    let timeout = Duration::from_secs(60);
    // More attempts than usual: the flapping link eats several.
    let retry = RetryPolicy {
        attempts: 8,
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
        deadline: Duration::from_secs(2),
        jitter_percent: 50,
    };

    let coordinator = Coordinator::start(
        schema(),
        CoordinatorConfig::new()
            .with_serve(
                ServeConfig::new().with_stream(
                    StreamConfig::new()
                        .with_policy(RefreshPolicy::Manual)
                        .with_acquisition(tight_acquisition()),
                ),
            )
            .with_retry(retry.clone()),
    )
    .unwrap();
    let proxy = ChaosProxy::start(coordinator.addr().to_string()).unwrap();
    let node = IngestNode::start(
        schema(),
        IngestNodeConfig::new(proxy.addr().to_string())
            .with_serve(ServeConfig::new().with_node_name("node-a"))
            .with_push_interval(Duration::from_millis(10))
            .with_retry(retry),
    )
    .unwrap();

    // Six batches; between them the link flaps, duplicates and corrupts.
    let mut all_rows: Vec<Vec<usize>> = Vec::new();
    let mut node_client = LineClient::connect(node.addr()).unwrap();
    for round in 0..6 {
        match round % 3 {
            // A short partition the pusher must ride out.
            0 => {
                proxy.plan().partition(true);
                proxy.sever_all();
            }
            // Deliver the next push twice: the duplicate must be gated.
            1 => proxy.plan().duplicate_next(1),
            // Garble a byte of the next push: the coordinator must refuse
            // it and the retry (of the uncorrupted original) must land.
            _ => proxy.plan().corrupt_next(1),
        }
        let share = rows(all_rows.len(), 50);
        node_client.ingest(&share).unwrap();
        all_rows.extend(share);
        if round % 3 == 0 {
            std::thread::sleep(Duration::from_millis(50));
            proxy.plan().partition(false);
        }
    }

    let expected = all_rows.len() as u64;
    let mut coordinator_client = LineClient::connect(coordinator.addr()).unwrap();
    wait_for(timeout, "every tuple to survive the chaos", || {
        coordinator_client.stats().unwrap().total_ingested >= expected
    });
    assert_eq!(
        coordinator_client.stats().unwrap().total_ingested,
        expected,
        "duplication or replay double-counted tuples"
    );
    coordinator_client.refresh().unwrap();
    assert_converged(coordinator.addr(), &one_shot(&all_rows));

    node.shutdown().unwrap();
    coordinator.shutdown().unwrap();
    proxy.stop();
}
