//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`), range and
//! [`any`] strategies, [`collection::vec`], and the `prop_assert*` /
//! `prop_assume!` macros.  Cases are generated from a deterministic
//! per-test-name seed, so failures are reproducible run to run; there is no
//! shrinking — the failing inputs are printed instead.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only the case count is configurable.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Marker returned by `prop_assume!` when a case is discarded.
#[derive(Debug)]
pub struct Discarded;

/// Deterministic per-case generator (SplitMix64 over a name+case seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream depends only on the test's name and the case
    /// index — reruns see the same inputs.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        case.hash(&mut hasher);
        Self { state: hasher.finish() ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(rng.below(span + 1) as $ty)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// Types with a whole-domain default strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` — `any::<u32>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A fixed value or range of lengths for [`collection::vec`].
pub trait IntoLenRange {
    /// The inclusive-exclusive `(min, max)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoLenRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{IntoLenRange, Strategy, TestRng};

    /// A `Vec` whose elements come from `element` and whose length is drawn
    /// from `len` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        assert!(min < max, "empty length range");
        VecStrategy { element, min, max }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + if span <= 1 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against `config.cases` random
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __name = concat!(module_path!(), "::", stringify!($name));
            let mut __case: u32 = 0;
            let mut __executed: u32 = 0;
            // Allow a bounded number of extra draws to replace cases
            // discarded by `prop_assume!`.
            while __executed < __config.cases && __case < __config.cases.saturating_mul(8) {
                let mut __rng = $crate::TestRng::deterministic(__name, __case);
                __case += 1;
                $(
                    let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);
                )+
                // The immediately-called closure gives `prop_assume!` an
                // early-return scope without a helper fn per test.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::Discarded> =
                    (|| -> ::std::result::Result<(), $crate::Discarded> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if __outcome.is_ok() {
                    __executed += 1;
                }
            }
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property, printing the condition on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Discarded);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Discarded);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_is_stable_per_name_and_case() {
        let mut a = crate::TestRng::deterministic("x", 0);
        let mut b = crate::TestRng::deterministic("x", 0);
        let mut c = crate::TestRng::deterministic("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3u64..10, y in -2.0f64..2.0, z in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(z < 4);
        }

        #[test]
        fn vec_lengths_respected(
            fixed in crate::collection::vec(0u64..5, 7),
            ranged in crate::collection::vec(0u64..5, 1..4),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((1..4).contains(&ranged.len()));
        }

        #[test]
        fn assume_discards(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
