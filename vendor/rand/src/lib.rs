//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.9 API this workspace uses — seeded
//! [`StdRng`], [`Rng::random`] and [`Rng::random_range`] — on top of a
//! xoshiro256\*\* generator seeded through SplitMix64.  Deterministic for a
//! given seed, which is all the datagen and benchmark code requires.

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

/// Low-level uniform word generation.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy; here: from the system clock,
    /// which is enough for the non-reproducible paths that ask for it.
    fn from_os_rng() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type: floats uniform in
    /// `[0, 1)`, integers uniform over their full range, fair booleans.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, span)` via Lemire-style
/// widening multiply; bias is negligible for the span sizes used here, and
/// determinism — not exact uniformity — is what the callers rely on.
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(uniform_u64(rng, span as u64) as $ty)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The standard generator: xoshiro256\*\* (Blackman–Vigna), seeded through
/// SplitMix64 exactly as the reference implementation recommends.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let i = rng.random_range(0..5usize);
            seen[i] = true;
            let x = rng.random_range(-3.0..3.0f64);
            assert!((-3.0..3.0).contains(&x));
            let k = rng.random_range(10..=12u64);
            assert!((10..=12).contains(&k));
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable");
    }
}
