//! Offline stand-in for mio-style readiness polling: a thin, safe wrapper
//! over raw Linux **epoll**.
//!
//! The build environment has no access to crates.io, so this vendors
//! exactly the readiness-API surface `pka-net`'s event loops use — the
//! `Poll` / `Events` / `Token` / `Interest` / `Waker` shape of `mio` —
//! implemented directly on the `epoll_create1` / `epoll_ctl` /
//! `epoll_wait` / `eventfd` syscalls (bound as `extern "C"` libc symbols;
//! std already links libc into every binary).  See `README.md` for the
//! covered surface and the deliberate deviations.
//!
//! # Semantics
//!
//! * **Level-triggered.**  Unlike `mio` (edge-triggered), registrations
//!   are level-triggered: an fd keeps reporting readable/writable for as
//!   long as the condition holds.  This is a deliberate simplification —
//!   a consumer re-arms interest around its buffer state (deregister read
//!   while it refuses input, register write only while output is pending)
//!   instead of having to drain every fd to `WouldBlock` on every event.
//!   The cost of level triggering (a spinning loop) only appears if a
//!   consumer keeps an interest it does not act on; `pka-net`'s
//!   connection state machines never do.
//! * **One registration per fd.**  epoll keys registrations by fd, so
//!   registering the same fd twice is an error (`EEXIST` surfaces as an
//!   `io::Error`); use [`Poll::reregister`] to change token or interest.
//! * **Hangup/error are always reported.**  `EPOLLHUP`/`EPOLLERR` are
//!   unmaskable; they surface as [`Event::is_closed`], and a peer's write
//!   shutdown (`EPOLLRDHUP`, subscribed with every read interest)
//!   surfaces as [`Event::is_read_closed`].
//!
//! The [`Waker`] is an `eventfd` in non-blocking mode registered on the
//! poll like any other source: any thread may call [`Waker::wake`] to make
//! the owning loop's `epoll_wait` return with the waker's token; the loop
//! calls [`Waker::drain`] before sleeping again (level-triggered, so an
//! undrained waker would spin the loop).

#![warn(missing_docs)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

// Bindings to the libc wrappers of the syscalls this crate is built on.
// std links libc into every Rust binary, so the symbols are always there.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`.  On x86-64 the kernel ABI packs it
/// (no padding between the 32-bit mask and the 64-bit payload); other
/// architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

pub mod net;
pub mod signal;

/// Converts a `-1` libc return into the thread's errno as an `io::Error`.
pub(crate) fn cvt(result: i32) -> io::Result<i32> {
    if result < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(result)
    }
}

/// Caller-chosen identifier attached to a registration and echoed on every
/// event for that source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness conditions a registration subscribes to.
///
/// Build with the [`Interest::READABLE`] / [`Interest::WRITABLE`]
/// constants and combine with [`Interest::add`]:
///
/// ```
/// use polling::Interest;
/// let both = Interest::READABLE.add(Interest::WRITABLE);
/// assert!(both.is_readable() && both.is_writable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in the source becoming readable (includes peer hangup).
    pub const READABLE: Interest = Interest(1);
    /// Interest in the source becoming writable.
    pub const WRITABLE: Interest = Interest(2);

    /// The union of two interests.
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether this interest includes readability.
    pub const fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether this interest includes writability.
    pub const fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    fn epoll_mask(self) -> u32 {
        let mut mask = 0;
        if self.is_readable() {
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if self.is_writable() {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// One readiness event: a [`Token`] plus the conditions that hold for its
/// source right now.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: usize,
    mask: u32,
}

impl Event {
    /// The token the source was registered under.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// The source has input available (or the peer hung up, which a read
    /// observes as EOF — callers should attempt the read either way).
    pub fn is_readable(&self) -> bool {
        self.mask & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0
    }

    /// The source can accept output without blocking (or has failed, which
    /// a write observes as an error).
    pub fn is_writable(&self) -> bool {
        self.mask & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The source is in an error state (`EPOLLERR`) or fully hung up
    /// (`EPOLLHUP`); no further progress is possible.
    pub fn is_closed(&self) -> bool {
        self.mask & (EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer shut down its write half (`EPOLLRDHUP`): reads will drain
    /// what is buffered and then return EOF.
    pub fn is_read_closed(&self) -> bool {
        self.mask & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
    }
}

/// A reusable buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// An event buffer able to report up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)], len: 0 }
    }

    /// Whether the last poll reported no events (i.e. it timed out).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The events reported by the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy out of the (packed) struct before use.
            let (events, data) = (raw.events, raw.data);
            Event { token: data as usize, mask: events }
        })
    }
}

/// An epoll instance: sources are registered with a [`Token`] and an
/// [`Interest`], and [`Poll::poll`] blocks until one of them is ready.
#[derive(Debug)]
pub struct Poll {
    epfd: RawFd,
}

// The epoll fd is just a handle; all operations on it are thread-safe at
// the kernel level.  (pka-net still confines each Poll to one loop thread;
// Send is what lets the loop be spawned.)
unsafe impl Send for Poll {}
unsafe impl Sync for Poll {}

impl Poll {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, mask: u32, token: usize) -> io::Result<()> {
        let mut event = EpollEvent { events: mask, data: token as u64 };
        let event_ptr =
            if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut event as *mut EpollEvent };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, event_ptr) }).map(drop)
    }

    /// Registers a source.  Fails (`EEXIST`) if the fd is already
    /// registered — use [`Poll::reregister`] to change an existing
    /// registration.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), interest.epoll_mask(), token.0)
    }

    /// Replaces an existing registration's token and interest.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), interest.epoll_mask(), token.0)
    }

    /// Removes a source's registration.  (Closing the fd removes it too;
    /// explicit deregistration just makes the lifecycle auditable.)
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), 0, 0)
    }

    /// Blocks until at least one registered source is ready, `timeout`
    /// elapses (`None` = forever), or the call is interrupted by a signal
    /// (reported as zero events, like a timeout — callers re-poll).
    /// Sub-millisecond timeouts are rounded up to 1 ms so a short timer
    /// deadline cannot turn into a busy spin.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(i32::MAX as u128) as i32
                }
            }
        };
        events.len = 0;
        let capacity = events.buf.len() as i32;
        match cvt(unsafe { epoll_wait(self.epfd, events.buf.as_mut_ptr(), capacity, timeout_ms) }) {
            Ok(n) => {
                events.len = n as usize;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// A cross-thread wakeup for a [`Poll`]: an `eventfd` registered on the
/// poll at construction.  Any thread holding (a clone of an `Arc` to) the
/// waker can make the polling thread's [`Poll::poll`] return with the
/// waker's token; the polling thread drains it with [`Waker::drain`]
/// before processing (level-triggered — an undrained waker keeps firing).
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
    token: Token,
}

unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates a waker and registers it on `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        let waker = Waker { fd, token };
        poll.register(&waker, token, Interest::READABLE)?;
        Ok(waker)
    }

    /// The token wake events carry.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Wakes the polling thread.  Signal-safe and non-blocking; multiple
    /// wakes before a drain coalesce into one event.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let n = unsafe { write(self.fd, &one as *const u64 as *const u8, 8) };
        // EAGAIN means the counter is saturated — the loop is already
        // guaranteed to wake, which is all a wake promises.
        if n == 8 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Clears pending wakes so the poll can sleep again.  Called by the
    /// polling thread when it sees the waker's token.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    const CLIENT: Token = Token(7);

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn timeout_expires_with_no_events() {
        let poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(30))).unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn readable_when_peer_writes_and_level_triggered_until_drained() {
        let (client, mut server) = pair();
        let poll = Poll::new().unwrap();
        poll.register(&client, CLIENT, Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing to read yet.
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        server.write_all(b"hello").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let event = events.iter().next().expect("readable event");
        assert_eq!(event.token(), CLIENT);
        assert!(event.is_readable());
        assert!(!event.is_read_closed());

        // Level-triggered: still readable on the next poll, until drained.
        poll.poll(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert!(events.iter().next().expect("still readable").is_readable());
        let mut sink = [0u8; 16];
        let mut client_reader = &client;
        assert_eq!(client_reader.read(&mut sink).unwrap(), 5);
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "drained source must stop reporting");
    }

    #[test]
    fn peer_close_reports_read_closed() {
        let (client, server) = pair();
        let poll = Poll::new().unwrap();
        poll.register(&client, CLIENT, Interest::READABLE).unwrap();
        drop(server);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let event = events.iter().next().expect("close event");
        assert!(event.is_read_closed());
    }

    #[test]
    fn writable_reported_and_maskable_by_reregister() {
        let (client, _server) = pair();
        let poll = Poll::new().unwrap();
        poll.register(&client, CLIENT, Interest::READABLE.add(Interest::WRITABLE)).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let event = events.iter().next().expect("writable event");
        assert!(event.is_writable());

        // Dropping write interest silences the (always-writable) socket.
        poll.reregister(&client, CLIENT, Interest::READABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        // Double registration is an explicit error.
        assert!(poll.register(&client, CLIENT, Interest::READABLE).is_err());
        poll.deregister(&client).unwrap();
        poll.register(&client, CLIENT, Interest::READABLE).unwrap();
    }

    #[test]
    fn waker_wakes_across_threads_and_coalesces() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll, Token(0)).unwrap());
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            for _ in 0..100 {
                remote.wake().unwrap();
            }
        });
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, None).unwrap();
        let event = events.iter().next().expect("wake event");
        assert_eq!(event.token(), Token(0));
        handle.join().unwrap();
        waker.drain();
        // 100 wakes coalesced; after the drain the poll sleeps again.
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
    }
}
