//! Listener construction with `SO_REUSEADDR` — crash-restart friendliness.
//!
//! After `kill -9`, a server's accepted connections linger in `TIME_WAIT`
//! and a plain `std::net::TcpListener::bind` on the same port fails with
//! `EADDRINUSE` for up to a minute — exactly when a crash-recovered node
//! most needs its old address back.  std exposes no socket options, so the
//! listener is built here from raw libc calls (the same binding style as
//! the epoll surface in the crate root) with `SO_REUSEADDR` set between
//! `socket` and `bind`, then handed to std via `FromRawFd`.
//!
//! Only IPv4 literals take the raw path; hostnames and IPv6 fall back to
//! `TcpListener::bind` (no reuse) rather than reimplementing resolution.

use crate::cvt;
use std::io;
use std::net::{Ipv4Addr, TcpListener};
use std::os::fd::FromRawFd;

extern "C" {
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
    fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
    fn close(fd: i32) -> i32;
}

const AF_INET: i32 = 2;
const SOCK_STREAM: i32 = 1;
const SOCK_CLOEXEC: i32 = 0o2000000;
const SOL_SOCKET: i32 = 1;
const SO_REUSEADDR: i32 = 2;

/// The kernel's `struct sockaddr_in`: family, then port and address in
/// network byte order, padded to `sockaddr` size.
#[repr(C)]
struct SockAddrIn {
    family: u16,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

fn raw_listen_v4(ip: Ipv4Addr, port: u16) -> io::Result<TcpListener> {
    let fd = cvt(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    let guard = |result: i32| {
        cvt(result).inspect_err(|_| {
            unsafe { close(fd) };
        })
    };
    let one: i32 = 1;
    guard(unsafe { setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) })?;
    let addr = SockAddrIn {
        family: AF_INET as u16,
        port_be: port.to_be(),
        // Network byte order = the octets laid out in address order.
        addr_be: u32::from_ne_bytes(ip.octets()),
        zero: [0; 8],
    };
    guard(unsafe { bind(fd, &addr, std::mem::size_of::<SockAddrIn>() as u32) })?;
    guard(unsafe { listen(fd, 1024) })?;
    // Safety of ownership transfer: fd is a fresh listening socket no other
    // handle refers to.
    Ok(unsafe { TcpListener::from_raw_fd(fd) })
}

/// Binds a TCP listener with `SO_REUSEADDR` set, so a restarted process
/// can reclaim a port whose previous owner died with connections in
/// `TIME_WAIT`.  IPv4 literal hosts take the raw socket path; anything
/// else falls back to [`TcpListener::bind`] semantics (no reuse).
pub fn bind_reuseaddr(host: &str, port: u16) -> io::Result<TcpListener> {
    match host.parse::<Ipv4Addr>() {
        Ok(ip) => raw_listen_v4(ip, port),
        Err(_) => TcpListener::bind((host, port)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn reuseaddr_listener_accepts_connections() {
        let listener = bind_reuseaddr("127.0.0.1", 0).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream.write_all(b"ping").unwrap();
            let mut reply = [0u8; 4];
            stream.read_exact(&mut reply).unwrap();
            reply
        });
        let (mut conn, _) = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        conn.write_all(b"pong").unwrap();
        assert_eq!(&client.join().unwrap(), b"pong");
    }

    #[test]
    fn port_is_immediately_rebindable() {
        let first = bind_reuseaddr("127.0.0.1", 0).unwrap();
        let port = first.local_addr().unwrap().port();
        // Leave an accepted connection dangling (its teardown parks the
        // socket in TIME_WAIT) and drop the listener — the crash-restart
        // shape, minus the kill.
        let client = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
        let (conn, _) = first.accept().unwrap();
        drop(first);
        drop(conn);
        drop(client);
        let again = bind_reuseaddr("127.0.0.1", port).unwrap();
        assert_eq!(again.local_addr().unwrap().port(), port);
    }

    #[test]
    fn hostname_falls_back_to_std_bind() {
        let listener = bind_reuseaddr("localhost", 0).unwrap();
        assert!(listener.local_addr().unwrap().port() > 0);
    }
}
