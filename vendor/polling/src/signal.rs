//! Minimal termination-signal handling via the classic self-pipe trick.
//!
//! std has no signal API, so `SIGTERM`/`SIGINT` are hooked with the libc
//! `signal()` wrapper.  A signal handler may only do async-signal-safe
//! work, which rules out locks, allocation, and channels — the portable
//! escape hatch is the *self-pipe trick*: the handler performs a single
//! `write(2)` (async-signal-safe) to a pre-opened pipe, and an ordinary
//! watcher thread sits in a blocking `read(2)` on the other end, turning
//! the signal into a normal thread wake-up that can take locks, log, and
//! trigger a graceful shutdown.
//!
//! The watch is process-global (signal dispositions are): install it once
//! per process.  The pipe's fds intentionally live for the whole process —
//! closing the write end while a handler might still run would turn a
//! late signal into `SIGPIPE`.

use crate::cvt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;
const O_CLOEXEC: i32 = 0o2000000;
/// `signal(2)`'s `SIG_ERR` return.
const SIG_ERR: usize = usize::MAX;

/// Write end of the self-pipe; -1 until [`watch_termination`] installs it.
static WRITE_FD: AtomicI32 = AtomicI32::new(-1);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// The signal handler: async-signal-safe by construction — one atomic
/// load and one `write(2)`, nothing else.
extern "C" fn on_termination(_signum: i32) {
    let fd = WRITE_FD.load(Ordering::Relaxed);
    if fd >= 0 {
        let byte = 1u8;
        unsafe { write(fd, &byte, 1) };
    }
}

/// A blocking handle to the process's termination signals.
#[derive(Debug)]
pub struct TerminationWatch {
    read_fd: i32,
}

impl TerminationWatch {
    /// Blocks the calling thread until `SIGTERM` or `SIGINT` arrives (or,
    /// degenerately, the pipe errors — also treated as "time to stop").
    pub fn wait(&self) {
        let mut buf = 0u8;
        loop {
            let n = unsafe { read(self.read_fd, &mut buf, 1) };
            if n == 1 {
                return;
            }
            if n < 0 && io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return;
        }
    }
}

/// Installs handlers for `SIGTERM` and `SIGINT` and returns a watch whose
/// [`TerminationWatch::wait`] blocks until one arrives.  May be called at
/// most once per process; a second call fails rather than silently
/// stealing the first watch's signals.
pub fn watch_termination() -> io::Result<TerminationWatch> {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "termination watch already installed for this process",
        ));
    }
    let mut fds = [-1i32; 2];
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_CLOEXEC) })?;
    WRITE_FD.store(fds[1], Ordering::SeqCst);
    for signum in [SIGTERM, SIGINT] {
        let previous = unsafe { signal(signum, on_termination as extern "C" fn(i32) as usize) };
        if previous == SIG_ERR {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(TerminationWatch { read_fd: fds[0] })
}

#[cfg(test)]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn watch_wakes_on_sigterm_and_reinstall_is_refused() {
        // One test drives the whole lifecycle: signal dispositions are
        // process state, so ordering across tests cannot be relied on.
        let watch = watch_termination().unwrap();
        assert!(watch_termination().is_err(), "double install must be refused");
        let waiter = std::thread::spawn(move || {
            watch.wait();
            true
        });
        // Give the waiter a beat to block in read(2), then signal the
        // process; the handler must route it to the pipe, not kill us.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(unsafe { raise(SIGTERM) }, 0);
        assert!(waiter.join().unwrap());
    }
}
