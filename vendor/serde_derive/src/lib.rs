//! Syn-free `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stand-in.
//!
//! The real `serde_derive` pulls in `syn`/`quote`, which are unavailable in
//! this offline build environment, so the struct grammar is parsed directly
//! from the [`proc_macro::TokenStream`].  Supported shapes cover everything
//! this workspace derives:
//!
//! * plain structs with named fields (no generics),
//! * tuple and unit structs,
//! * the `#[serde(skip)]` field attribute (field is omitted on
//!   serialisation and filled from `Default` on deserialisation).
//!
//! Enums and generic types are rejected with a compile error naming this
//! file, so an unsupported use shows up at build time rather than as silent
//! misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    /// Named field identifier, or the positional index rendered as text.
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Unit,
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    match parse(item) {
        Ok(input) => gen_serialize(&input).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    match parse(item) {
        Ok(input) => gen_deserialize(&input).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(item: TokenStream) -> Result<Input, String> {
    let mut tokens = item.into_iter().peekable();

    // Outer attributes and visibility before the `struct` keyword.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
            return Err("the vendored serde_derive does not support enums".into());
        }
        other => return Err(format!("expected `struct`, found {other:?}")),
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("the vendored serde_derive does not support generic type `{name}`"));
    }

    let shape = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream())?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(parse_tuple_fields(g.stream())?)
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => return Err(format!("unsupported struct body: {other:?}")),
    };

    Ok(Input { name, shape })
}

/// Consumes leading `#[...]` attribute groups, reporting whether any of them
/// is `#[serde(skip)]`.
fn take_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    let text = g.stream().to_string();
                    if text.starts_with("serde") && text.contains("skip") {
                        skip = true;
                    }
                }
            }
            _ => return skip,
        }
    }
}

fn take_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if let Some(TokenTree::Group(g)) = tokens.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                tokens.next();
            }
        }
    }
}

/// Skips one type expression: everything up to a top-level `,` (angle
/// brackets tracked so `HashMap<K, V>` stays one type).
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        tokens.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if tokens.peek().is_none() {
            return Ok(fields);
        }
        let skip = take_attrs(&mut tokens);
        take_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return Ok(fields),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        skip_type(&mut tokens);
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        fields.push(Field { name, skip });
    }
}

fn parse_tuple_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    let mut index = 0usize;
    while tokens.peek().is_some() {
        let skip = take_attrs(&mut tokens);
        take_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_type(&mut tokens);
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        fields.push(Field { name: index.to_string(), skip });
        index += 1;
    }
    Ok(fields)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from({:?}), \
                     ::serde::Serialize::serialize(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Shape::Tuple(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__items.push(::serde::Serialize::serialize(&self.{}));\n",
                    f.name
                ));
            }
            format!(
                "let mut __items: ::std::vec::Vec<::serde::Value> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Array(__items)"
            )
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
                } else {
                    inits.push_str(&format!(
                        "{}: ::serde::de_field(__value, {:?})?,\n",
                        f.name, f.name
                    ));
                }
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::Tuple(fields) => {
            let mut inits = String::new();
            let mut serialized_index = 0usize;
            for f in fields {
                if f.skip {
                    inits.push_str("::std::default::Default::default(),\n");
                } else {
                    inits
                        .push_str(&format!("::serde::de_element(__value, {serialized_index})?,\n"));
                    serialized_index += 1;
                }
            }
            format!("::std::result::Result::Ok({name}(\n{inits}))")
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
