//! Offline stand-in for `serde_json`: prints and parses JSON text to and
//! from the vendored [`serde::Value`] tree.
//!
//! Floats are printed with Rust's shortest-roundtrip formatting (`{:?}`), so
//! a serialise → parse cycle reproduces every finite `f64` bit-for-bit.
//! Non-finite floats serialise to `null`, matching real serde_json.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON parsing or typed deserialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialises a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    use fmt::Write;
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        // Scalars are written through `fmt::Write` straight into the output
        // buffer: a response carrying hundreds of numbers (e.g. a
        // `query-batch` answer) would otherwise allocate one intermediate
        // `String` per number.
        Value::U64(n) => write!(out, "{n}").expect("writing to a String cannot fail"),
        Value::I64(n) => write!(out, "{n}").expect("writing to a String cannot fail"),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest representation that round-trips.
                write!(out, "{x:?}").expect("writing to a String cannot fail")
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    // Copy maximal runs that need no escaping in one `push_str` — almost
    // every key and value on the wire protocol is such a run, and the
    // earlier per-character loop showed up in serve-path profiles.
    let mut rest = s;
    while let Some(stop) = rest.find(|c: char| (c as u32) < 0x20 || c == '"' || c == '\\') {
        out.push_str(&rest[..stop]);
        let c = rest[stop..].chars().next().expect("stop is a char boundary");
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
        }
        rest = &rest[stop + c.len_utf8()..];
    }
    out.push_str(rest);
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Maximum container-nesting depth the parser accepts.  The parser is
/// recursive-descent, so without a bound a hostile input of repeated `[`
/// characters would overflow the stack (and a stack overflow aborts the
/// whole process); 128 levels is far beyond anything the workspace or its
/// wire protocols produce.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new(format!(
                "containers nested deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.descend()?;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'{') => {
                self.descend()?;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(Vec::new()));
        }
        // Non-empty containers on this crate's wire paths are usually
        // small; a seed capacity skips the first few growth reallocations
        // without over-reserving (and empty ones, handled above, allocate
        // nothing).
        let mut items = Vec::with_capacity(4);
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(Vec::new()));
        }
        let mut fields = Vec::with_capacity(8);
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        // Fast path: most strings contain no escapes, so scan straight to
        // the closing quote and copy once.  A quote or backslash byte can
        // never appear inside a UTF-8 continuation sequence, so the byte
        // scan is character-safe.
        let start = self.pos;
        let mut cursor = self.pos;
        while let Some(&b) = self.bytes.get(cursor) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..cursor])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                self.pos = cursor + 1;
                return Ok(s.to_string());
            }
            if b == b'\\' {
                break;
            }
            cursor += 1;
        }
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of ordinary bytes at once.  A
                    // quote or backslash can never appear inside a UTF-8
                    // continuation sequence (those bytes are ≥ 0x80), so
                    // scanning raw bytes is character-safe, and validating
                    // the run once keeps string parsing O(length) — the
                    // earlier per-character validation of the entire
                    // remaining input made big request lines (e.g.
                    // `query-batch`) quadratic to parse.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(3)),
            ("b".to_string(), Value::F64(0.25)),
            ("c".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("d".to_string(), Value::Str("x \"quoted\"\n".to_string())),
            ("e".to_string(), Value::I64(-7)),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 750.0 / 3428.0, 1e-300, -2.5e17] {
            let mut s = String::new();
            write_value(&mut s, &Value::F64(x), None, 0);
            let back = parse_value(&s).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 0.25)];
        let text = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // A hostile line of repeated brackets must come back as a parse
        // error; unbounded recursion would abort the whole process.
        let hostile = "[".repeat(200_000);
        assert!(parse_value(&hostile).is_err());
        let mixed = "{\"a\":".repeat(100_000) + "1" + &"}".repeat(100_000);
        assert!(parse_value(&mixed).is_err());
        // Reasonable nesting still parses.
        let fine = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_value(&fine).is_ok());
    }
}
