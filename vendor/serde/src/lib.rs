//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny subset of serde it actually relies on: a self-describing
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits that convert to and
//! from it, and derive macros (re-exported from `serde_derive`) that
//! implement the traits for plain structs with named or tuple fields,
//! honouring `#[serde(skip)]`.
//!
//! The trait signatures are intentionally simpler than real serde's
//! visitor-based design: nothing in this workspace implements the traits by
//! hand against a foreign `Serializer`, so a value-tree intermediate is
//! enough, keeps the vendored code auditable, and lets `serde_json` be a
//! straightforward printer/parser over [`Value`].

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::fmt;

/// Error produced when deserialising a [`Value`] into a typed structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialisation into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Deserialisation from the self-describing [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Looks up and deserialises one named field of an object value.
///
/// Missing fields deserialise from [`Value::Null`], so `Option` fields
/// default to `None` exactly as with real serde's `default` behaviour.
/// This is a support routine for the derive macros; user code should not
/// need to call it.
pub fn de_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    let Value::Object(fields) = value else {
        return Err(Error::custom(format!(
            "expected an object with field `{name}`, found {}",
            value.kind()
        )));
    };
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::deserialize(v).map_err(|e| Error::custom(format!("in field `{name}`: {e}")))
        }
        None => T::deserialize(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}

/// Deserialises the `index`-th element of an array value (tuple-struct
/// support routine for the derive macros).
pub fn de_element<T: Deserialize>(value: &Value, index: usize) -> Result<T, Error> {
    let Value::Array(items) = value else {
        return Err(Error::custom(format!("expected an array, found {}", value.kind())));
    };
    match items.get(index) {
        Some(v) => T::deserialize(v).map_err(|e| Error::custom(format!("in element {index}: {e}"))),
        None => Err(Error::custom(format!("missing tuple element {index}"))),
    }
}
