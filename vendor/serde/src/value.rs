//! The self-describing value tree shared by serialisation and JSON text.

/// A dynamically-typed value: the intermediate representation between typed
/// Rust structures and JSON text.
///
/// Object fields are kept as an insertion-ordered `Vec` rather than a map so
/// serialised output is deterministic and mirrors struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (serialised without a decimal point).
    U64(u64),
    /// Negative integer (serialised without a decimal point).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable name for the value's kind, used in error
    /// messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value of a named object field, if this is an object that has it.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if this is a non-negative integer (or a float
    /// that is exactly one).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::I64(n) => Some(n),
            Value::F64(x) if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 => {
                Some(x as i64)
            }
            _ => None,
        }
    }
}
