//! Trait implementations for the std types this workspace serialises.

use crate::{Deserialize, Error, Serialize, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! unsigned_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, found {}",
                        value.kind()
                    ))
                })?;
                <$ty>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, found {}", value.kind()))
                })?;
                <$ty>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-character string, found {}",
                other.kind()
            ))),
        }
    }
}

// The identity impls let dynamically-shaped data (e.g. wire-protocol
// requests whose `params` differ per method) pass through the typed
// serialisation entry points untouched.
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Containers and smart pointers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! pointer_impl {
    ($($ptr:ident),*) => {$(
        impl<T: Serialize + ?Sized> Serialize for $ptr<T> {
            fn serialize(&self) -> Value {
                (**self).serialize()
            }
        }
        impl<T: Deserialize> Deserialize for $ptr<T> {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                T::deserialize(value).map($ptr::new)
            }
        }
    )*};
}

pointer_impl!(Arc, Rc, Box);

macro_rules! tuple_impl {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                Ok(($(crate::de_element::<$name>(value, $idx)?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// Maps serialise as arrays of [key, value] pairs so non-string keys work.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()])).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Vec::<(K, V)>::deserialize(value).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()])).collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Vec::<(K, V)>::deserialize(value).map(|pairs| pairs.into_iter().collect())
    }
}
