//! Offline stand-in for the `arc-swap` crate: an atomically swappable
//! `Option<Arc<T>>` slot whose **readers are wait-free**.
//!
//! The build environment has no access to crates.io, so this vendors the
//! one primitive the workspace needs — [`ArcSwapOption`] — implemented as
//! a *single atomic pointer guarded by striped borrow counters* (a
//! simplified form of the real crate's debt machinery):
//!
//! * one `AtomicPtr` holds the current value — a swap publishes
//!   atomically, so there is never a half-published state to observe;
//! * readers register in one of a small fixed set of borrow counters
//!   (stripe chosen per thread) for the few instructions between loading
//!   the pointer and bumping the `Arc` strong count;
//! * a writer swaps first, then waits for each stripe to be *momentarily*
//!   zero before releasing the value it displaced.
//!
//! A load is a fixed, loop-free instruction sequence (pick stripe,
//! increment counter, read pointer, bump strong count, decrement counter)
//! — it never spins, never takes a lock, and never waits on a writer.
//! The stripes exist for the writer's sake: it does not need all counters
//! zero *simultaneously*, only each observed zero once after the swap, and
//! any single stripe is touched by only a fraction of the reader threads.
//! A publish may therefore still wait for in-flight borrows to drain —
//! normally a handful of instructions per reader, though a reader
//! preempted inside its borrow window holds its stripe until rescheduled
//! (the wait loop yields to let that happen) — but it can never be
//! starved by readers *between* loads, which is where reader threads
//! spend virtually all of their time.
//!
//! # Why the algorithm is sound
//!
//! All atomics use `SeqCst`, so every operation below sits in one total
//! order.
//!
//! * **A loaded pointer is always alive.**  A reader that loaded the *old*
//!   pointer performed its counter increment before its pointer load,
//!   which preceded the writer's swap.  The writer releases the displaced
//!   value only after observing that reader's stripe at zero — and the
//!   counter cannot read zero while the reader is still between its
//!   increment and its (post-clone) decrement.  A reader that increments
//!   after the swap simply loads the new pointer.
//! * **Loads are monotone per thread.**  The pointer lives in a single
//!   atomic location, so successive reads by one thread observe a
//!   non-decreasing prefix of the publish history (coherence); a reader
//!   can never see version `n + 1` and then version `n`.  And because a
//!   swap makes the new value current atomically, a load always returns
//!   the value that *is* current at the instant the pointer is read —
//!   never a stale one, never an unpublished one.
//!
//! Publishes serialise on an internal mutex (they are rare — one per
//! knowledge-base refit); loads never touch it.

#![warn(missing_docs)]

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Number of borrow-counter stripes.  Power of two; plenty for the
/// thread-per-connection server, where any one stripe is shared by only a
/// fraction of the reader threads.
const STRIPES: usize = 8;

/// Round-robin assignment of threads to stripes.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's borrow-counter stripe.
    static READER_STRIPE: usize = NEXT_STRIPE.fetch_add(1, SeqCst) % STRIPES;
}

/// An atomically swappable `Option<Arc<T>>` with wait-free readers.
pub struct ArcSwapOption<T> {
    /// The current value as a raw `Arc` pointer (null = `None`).
    ptr: AtomicPtr<T>,
    /// In-flight borrow count per stripe: readers currently between their
    /// increment and decrement on that stripe.
    borrows: [AtomicUsize; STRIPES],
    /// Serialises writers; readers never touch it.
    write_lock: Mutex<()>,
}

impl<T> ArcSwapOption<T> {
    /// Creates a slot holding `initial`.
    pub fn new(initial: Option<Arc<T>>) -> Self {
        let first = match initial {
            Some(arc) => Arc::into_raw(arc).cast_mut(),
            None => ptr::null_mut(),
        };
        Self {
            ptr: AtomicPtr::new(first),
            borrows: std::array::from_fn(|_| AtomicUsize::new(0)),
            write_lock: Mutex::new(()),
        }
    }

    /// Creates an empty slot.
    pub fn empty() -> Self {
        Self::new(None)
    }

    /// Loads the current value, cloning the `Arc` (wait-free; see the
    /// module docs for the safety argument).
    pub fn load_full(&self) -> Option<Arc<T>> {
        let stripe = READER_STRIPE.with(|s| *s);
        self.borrows[stripe].fetch_add(1, SeqCst);
        let p = self.ptr.load(SeqCst);
        let loaded = if p.is_null() {
            None
        } else {
            // SAFETY: `p` came from `Arc::into_raw` and the slot holds one
            // strong reference to it.  A writer that displaces `p` cannot
            // release that reference before observing our stripe at zero,
            // which cannot happen until after the decrement below — so the
            // strong count is ≥ 1 throughout this clone.
            unsafe {
                Arc::increment_strong_count(p);
                Some(Arc::from_raw(p))
            }
        };
        self.borrows[stripe].fetch_sub(1, SeqCst);
        loaded
    }

    /// Publishes a new value and releases the displaced one.  Waits
    /// (briefly) for in-flight readers of the displaced value; never
    /// blocks readers.
    pub fn store(&self, new: Option<Arc<T>>) {
        let _guard = self.write_lock.lock().expect("arc-swap writer poisoned");
        let new_ptr = match new {
            Some(arc) => Arc::into_raw(arc).cast_mut(),
            None => ptr::null_mut(),
        };
        let displaced = self.ptr.swap(new_ptr, SeqCst);
        if !displaced.is_null() {
            // Each stripe needs to be observed at zero once, not all at
            // the same instant: a zero observed after the swap proves
            // every pre-swap borrow on that stripe has finished.
            for counter in &self.borrows {
                let mut spins = 0u32;
                while counter.load(SeqCst) != 0 {
                    spins += 1;
                    if spins.is_multiple_of(64) {
                        // Single-core friendliness: a reader preempted
                        // inside its borrow window needs the CPU to leave.
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
            // SAFETY: the pointer was produced by `Arc::into_raw` when it
            // was stored, the swap removed it from the slot, and the waits
            // above prove no reader is mid-clone on it.
            unsafe { drop(Arc::from_raw(displaced)) };
        }
    }

    /// True if the slot currently holds no value.
    pub fn is_none(&self) -> bool {
        self.ptr.load(SeqCst).is_null()
    }
}

impl<T> Default for ArcSwapOption<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T> Drop for ArcSwapOption<T> {
    fn drop(&mut self) {
        let p = self.ptr.load(SeqCst);
        if !p.is_null() {
            // SAFETY: `&mut self` means no reader or writer is live; the
            // slot owns one strong reference.
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

impl<T> fmt::Debug for ArcSwapOption<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArcSwapOption").field("is_none", &self.is_none()).finish()
    }
}

// SAFETY: the slot hands out `Arc<T>` clones across threads (needs
// `T: Send + Sync` exactly as `Arc` itself does) and its interior state is
// only atomics plus a mutex.
unsafe impl<T: Send + Sync> Send for ArcSwapOption<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwapOption<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_loads_none() {
        let slot: ArcSwapOption<u64> = ArcSwapOption::empty();
        assert!(slot.load_full().is_none());
        assert!(slot.is_none());
    }

    #[test]
    fn store_and_load_round_trip() {
        let slot = ArcSwapOption::new(Some(Arc::new(1u64)));
        assert_eq!(*slot.load_full().unwrap(), 1);
        slot.store(Some(Arc::new(2)));
        assert_eq!(*slot.load_full().unwrap(), 2);
        slot.store(None);
        assert!(slot.load_full().is_none());
        slot.store(Some(Arc::new(3)));
        assert_eq!(*slot.load_full().unwrap(), 3);
    }

    #[test]
    fn held_clones_survive_swaps() {
        let slot = ArcSwapOption::new(Some(Arc::new(10u64)));
        let pinned = slot.load_full().unwrap();
        for v in 11..100 {
            slot.store(Some(Arc::new(v)));
        }
        assert_eq!(*pinned, 10, "a loaded Arc is immutable under later swaps");
        assert_eq!(*slot.load_full().unwrap(), 99);
    }

    #[test]
    fn no_leaks_on_drop() {
        struct Counted<'a>(&'a AtomicU64);
        impl Drop for Counted<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }
        let drops = AtomicU64::new(0);
        {
            let slot = ArcSwapOption::new(Some(Arc::new(Counted(&drops))));
            slot.store(Some(Arc::new(Counted(&drops))));
            slot.store(Some(Arc::new(Counted(&drops))));
            assert_eq!(drops.load(SeqCst), 2, "each publish released the displaced value");
        }
        assert_eq!(drops.load(SeqCst), 3, "drop releases the final value");
    }

    #[test]
    fn concurrent_readers_see_monotone_values() {
        const PUBLISHES: u64 = 2_000;
        let slot = Arc::new(ArcSwapOption::new(Some(Arc::new(0u64))));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    loop {
                        let v = *slot.load_full().expect("never emptied");
                        assert!(v >= last, "regressed from {last} to {v}");
                        last = v;
                        if v == PUBLISHES {
                            return;
                        }
                    }
                })
            })
            .collect();
        for v in 1..=PUBLISHES {
            slot.store(Some(Arc::new(v)));
        }
        for r in readers {
            r.join().unwrap();
        }
    }
}
