//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use —
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`criterion_group!`]/[`criterion_main!`], [`BenchmarkId`], [`Throughput`]
//! — as a compact wall-clock harness: each benchmark is warmed up briefly,
//! then timed over an adaptive iteration count, and the mean/min per
//! iteration is printed in criterion-like style.  There is no statistical
//! analysis or HTML report; the numbers are honest medians of short runs,
//! which is what the CHANGES.md records rely on.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(400);
/// Warm-up time per benchmark.
const TARGET_WARMUP: Duration = Duration::from_millis(80);

/// True when the bench binary was invoked in smoke mode (`cargo bench --
/// --test`, mirroring real criterion's flag, or `PKA_BENCH_SMOKE=1`): every
/// benchmark closure runs exactly once, untimed, so CI can prove each bench
/// still compiles and executes — including its correctness gates — without
/// paying for measurement.
fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| {
        std::env::args().any(|a| a == "--test") || std::env::var_os("PKA_BENCH_SMOKE").is_some()
    })
}

/// The benchmark context handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n{name}");
        BenchmarkGroup { _parent: self, group: name, throughput: None }
    }

    /// Benchmarks a function directly on the context (no group).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_benchmark_id().render(), None, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and optional throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.group, id.into_benchmark_id().render());
        run_benchmark(&name, self.throughput, &mut f);
        self
    }

    /// Benchmarks a closure that receives an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.group, id.into_benchmark_id().render());
        run_benchmark(&name, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Declares the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the adaptive harness ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the adaptive harness ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the adaptive harness ignores it.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Finishes the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Per-iteration work declaration, for tuples/sec style reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterised.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { name: name.into(), parameter: Some(parameter.to_string()) }
    }

    /// An id carrying only a parameter (the function name is the group's).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { name: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{}", self.name, p),
            (false, None) => self.name.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::new(),
        }
    }
}

/// Conversion into [`BenchmarkId`] so `&str` works directly.
pub trait IntoBenchmarkId {
    /// Converts to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.to_string(), parameter: None }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self, parameter: None }
    }
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    /// Total time of the measured iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
}

impl Bencher {
    /// Times `f`, adaptively choosing an iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if smoke_mode() {
            let start = Instant::now();
            black_box(f());
            self.elapsed = start.elapsed();
            self.iters = 1;
            return;
        }
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= TARGET_WARMUP {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (TARGET_MEASURE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `f` with explicit control of the iteration count per call.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let iters = if smoke_mode() { 1 } else { 10 };
        self.elapsed = f(iters);
        self.iters = iters;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
    f(&mut bencher);
    if bencher.iters == 0 {
        eprintln!("  {name}: no measurement (b.iter never called)");
        return;
    }
    let per_iter_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    let mut line = format!("  {name}: {} ({} iters)", format_ns(per_iter_ns), bencher.iters);
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / (per_iter_ns / 1e9);
        line.push_str(&format!(" — {rate:.3e} {unit}/s"));
    }
    eprintln!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function list, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
