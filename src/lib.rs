//! # pka — Automatic Probabilistic Knowledge Acquisition from Data
//!
//! A facade crate that re-exports the whole workspace implementing
//! W. B. Gevarter's NASA TM-88224 (*Automatic Probabilistic Knowledge
//! Acquisition from Data*, 1986): maximum-entropy modelling of contingency
//! tables, minimum-message-length discovery of significant joint
//! probabilities, and probabilistic IF–THEN rule induction for expert
//! systems.
//!
//! Most applications only need three steps:
//!
//! 1. build a [`contingency::Dataset`] (or a
//!    [`contingency::ContingencyTable`] directly),
//! 2. run [`core::Acquisition`] to obtain a [`core::KnowledgeBase`],
//! 3. query conditional probabilities or induce rules from the knowledge
//!    base.
//!
//! See the `examples/` directory for end-to-end programs (the paper's
//! smoking/cancer survey, synthetic survey discovery, rule extraction and a
//! small expert-system shell).

#![forbid(unsafe_code)]

/// Data layer: attributes, schemas, datasets and contingency tables.
pub use pka_contingency as contingency;

/// Statistical layer: binomial likelihoods, the minimum-message-length test,
/// χ²/G-test baselines.
pub use pka_significance as significance;

/// Maximum-entropy layer: constraints, the a-value (log-linear) model and its
/// iterative-scaling solver.
pub use pka_maxent as maxent;

/// The acquisition procedure, knowledge bases, queries and rule induction.
pub use pka_core as core;

/// Workload generators: the paper's survey and synthetic data.
pub use pka_datagen as datagen;

/// Baseline estimators for comparison experiments.
pub use pka_baselines as baselines;

/// A small probabilistic expert-system shell over acquired knowledge bases.
pub use pka_expert as expert;

/// The incremental, sharded streaming-acquisition engine: live ingestion,
/// staleness-driven warm refits, snapshot-isolated queries.
pub use pka_stream as stream;

/// The concurrent query server: a newline-delimited JSON protocol over TCP
/// serving queries, explanations and live ingestion from a streaming
/// knowledge base.
pub use pka_serve as serve;

/// The multi-node shard fabric: ingest nodes pushing cumulative count
/// shards, a coordinator merging them into one model, and read replicas
/// syncing its published snapshots.
pub use pka_fabric as fabric;
